"""Baseline router models for the Figure 13 comparison.

    "The experiment was performed on XORP, Cisco-4500 (IOS Version 12.1),
    Quagga-0.96.5, and MRTD-2.2.2a routers. ... The Cisco and Quagga
    routers exhibit the obvious symptoms of a 30-second route scanner,
    where all the routes received in the previous 30 seconds are processed
    in one batch.  Fast convergence is simply not possible with such a
    scanner-based approach."

Both models are *real BGP speakers*: they run the same peer FSM and
exchange the same encoded messages as our XORP-style stack.  They differ
only in the property under test:

* :class:`ScannerRouterModel` (Cisco IOS / Quagga / Zebra): received
  updates land in a staging table; a periodic route scanner — default 30 s
  — processes the batch and propagates it;
* :class:`EventDrivenRouterModel` (MRTD / BIRD): a single-process
  event-driven router that propagates each update as it arrives, after a
  small per-update processing cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.fsm import PeerFSM
from repro.bgp.messages import UpdateMessage
from repro.bgp.session import BgpSession
from repro.net import IPNet, IPv4


class _ModelPeer:
    """FSM + session wiring for one peering of a baseline router."""

    def __init__(self, model: "_BaselineRouter", name: str, peer_as: int):
        self.model = model
        self.name = name
        self.fsm = PeerFSM(
            model.loop, self,
            local_as=model.local_as,
            bgp_id=model.bgp_id,
            peer_as=peer_as,
            holdtime=90,
            name=f"{model.name}-{name}",
        )
        self.session: Optional[BgpSession] = None

    def attach_session(self, session: BgpSession) -> None:
        self.session = session
        session.on_connected = self._on_connected
        session.on_data = self._on_data
        session.on_closed = self.fsm.connection_failed

    def _on_connected(self) -> None:
        from repro.bgp.messages import MessageReader

        self._reader = MessageReader()  # fresh stream, fresh reassembly
        self.fsm.connection_opened()

    def _on_data(self, data: bytes) -> None:
        from repro.bgp.messages import BGPDecodeError, MessageReader

        if not hasattr(self, "_reader"):
            self._reader = MessageReader()
        try:
            messages = self._reader.feed(data)
        except BGPDecodeError as error:
            self.fsm.decode_error(error)
            return
        for message in messages:
            self.fsm.message_received(message)

    # FSM actions ------------------------------------------------------------
    def start_connect(self) -> None:
        if self.session is not None:
            self.session.connect()

    def send_message(self, message) -> None:
        if self.session is not None and self.session.connected:
            self.session.send(message.encode())

    def drop_connection(self) -> None:
        if self.session is not None and self.session.connected:
            self.session.close()

    def session_established(self, peer_open) -> None:
        pass

    def session_down(self, reason: str) -> None:
        pass

    def update_received(self, update: UpdateMessage) -> None:
        self.model.update_from_peer(self, update)


class _BaselineRouter:
    """Common shell: peers, adj-RIB-in, propagation hook."""

    def __init__(self, loop, name: str, local_as: int, bgp_id: str):
        self.loop = loop
        self.name = name
        self.local_as = local_as
        self.bgp_id = IPv4(bgp_id)
        self.peers: Dict[str, _ModelPeer] = {}
        #: net -> (attributes, from_peer_name)
        self.rib_in: Dict[IPNet, Tuple] = {}
        self.updates_propagated = 0

    def add_peer(self, name: str, peer_as: int) -> _ModelPeer:
        peer = _ModelPeer(self, name, peer_as)
        self.peers[name] = peer
        return peer

    def start(self) -> None:
        for peer in self.peers.values():
            peer.fsm.manual_start()

    def update_from_peer(self, peer: _ModelPeer, update: UpdateMessage) -> None:
        raise NotImplementedError

    def _propagate(self, from_peer: _ModelPeer, update: UpdateMessage) -> None:
        """Send *update* (rewritten) to every other peer."""
        if update.nlri:
            attributes = update.attributes.replace(
                as_path=update.attributes.as_path.prepend(self.local_as))
            forwarded = UpdateMessage(withdrawn=update.withdrawn,
                                      attributes=attributes, nlri=update.nlri)
        else:
            forwarded = update
        for peer in self.peers.values():
            if peer is from_peer:
                continue
            from repro.bgp.fsm import BgpState

            if peer.fsm.state == BgpState.ESTABLISHED:
                self.updates_propagated += 1
                peer.send_message(forwarded)


class EventDrivenRouterModel(_BaselineRouter):
    """MRTD/BIRD model: process-to-completion per update.

    A single monolithic event-driven process: no IPC hops, just a small
    per-update processing delay before propagation.
    """

    def __init__(self, loop, name: str, local_as: int, bgp_id: str, *,
                 processing_delay: float = 0.002):
        super().__init__(loop, name, local_as, bgp_id)
        self.processing_delay = processing_delay

    def update_from_peer(self, peer: _ModelPeer, update: UpdateMessage) -> None:
        for net in update.withdrawn:
            self.rib_in.pop(net, None)
        for net in update.nlri:
            self.rib_in[net] = (update.attributes,
                                peer.name if peer is not None else "inject")
        self.loop.call_later(self.processing_delay,
                             lambda: self._propagate(peer, update),
                             name=f"{self.name}-process")


class ScannerRouterModel(_BaselineRouter):
    """Cisco IOS / Quagga / Zebra model: periodic route scanner.

    Updates accumulate in a staging buffer; every *scan_interval* seconds
    the scanner wakes, resolves the batch, and propagates it — the source
    of "all the routes received in the previous 30 seconds are processed
    in one batch" in Figure 13.
    """

    def __init__(self, loop, name: str, local_as: int, bgp_id: str, *,
                 scan_interval: float = 30.0,
                 per_route_scan_cost: float = 0.0005):
        super().__init__(loop, name, local_as, bgp_id)
        self.scan_interval = scan_interval
        self.per_route_scan_cost = per_route_scan_cost
        self._staged: List[Tuple[_ModelPeer, UpdateMessage]] = []
        self.scans_run = 0
        self._scan_timer = loop.call_periodic(
            scan_interval, self._scan, name=f"{name}-scanner")

    def stop(self) -> None:
        self._scan_timer.cancel()

    def update_from_peer(self, peer: _ModelPeer, update: UpdateMessage) -> None:
        for net in update.withdrawn:
            self.rib_in.pop(net, None)
        for net in update.nlri:
            self.rib_in[net] = (update.attributes,
                                peer.name if peer is not None else "inject")
        self._staged.append((peer, update))

    def _scan(self) -> None:
        """The periodic route scanner: drain the whole staged batch."""
        self.scans_run += 1
        if not self._staged:
            return
        staged, self._staged = self._staged, []
        batch_cost = self.per_route_scan_cost * len(staged)
        for index, (peer, update) in enumerate(staged):
            delay = batch_cost * (index + 1) / max(1, len(staged))
            self.loop.call_later(
                delay,
                lambda p=peer, u=update: self._propagate(p, u),
                name=f"{self.name}-scan-out")
