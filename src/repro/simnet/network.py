"""Hosts, links, datagram delivery and packet forwarding."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.fea.rawsock import DeliveryCallback, PacketIO
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.rib.route import RibRoute

RIP_MCAST = IPv4("224.0.0.9")


class _LinkEnd:
    __slots__ = ("router", "ifname", "addr")

    def __init__(self, router: "SimRouter", ifname: str, addr: IPv4):
        self.router = router
        self.ifname = ifname
        self.addr = addr


class Link:
    """A point-to-point link with one-way latency."""

    def __init__(self, network: "SimNetwork", end_a: _LinkEnd, end_b: _LinkEnd,
                 delay: float = 0.001):
        self.network = network
        self.ends = (end_a, end_b)
        self.delay = delay
        self.up = True
        self.packets_carried = 0

    def other_end(self, end: _LinkEnd) -> _LinkEnd:
        return self.ends[1] if end is self.ends[0] else self.ends[0]

    def transmit(self, from_end: _LinkEnd, src: IPv4, dst: IPv4, port: int,
                 payload: bytes) -> None:
        if not self.up:
            return
        to_end = self.other_end(from_end)
        self.packets_carried += 1

        def deliver() -> None:
            if not self.up:
                return
            # Deliver if addressed to the far end, multicast, or broadcast.
            if (dst == to_end.addr or dst.is_multicast()
                    or dst == IPv4.all_ones()):
                to_end.router.packet_io.deliver(
                    to_end.ifname, src, port, payload)
            else:
                # Not for the far interface itself: hand to forwarding.
                self.network.forward(to_end.router, src, dst, port, payload)

        self.network.loop.call_later(self.delay, deliver, name="link")

    def set_up(self, up: bool) -> None:
        self.up = up


class SimPacketIO(PacketIO):
    """Per-router datagram backend, wired to that router's links."""

    def __init__(self) -> None:
        self._deliver: Optional[DeliveryCallback] = None
        self._ends: Dict[str, Tuple[Link, _LinkEnd]] = {}

    def attach(self, ifname: str, link: Link, end: _LinkEnd) -> None:
        self._ends[ifname] = (link, end)

    def bind(self, deliver: DeliveryCallback) -> None:
        self._deliver = deliver

    def send(self, ifname: str, src: IPv4, dst: IPv4, port: int,
             payload: bytes) -> None:
        entry = self._ends.get(ifname)
        if entry is None:
            return  # interface exists but is not linked: drop
        link, end = entry
        link.transmit(end, src, dst, port, payload)

    def deliver(self, ifname: str, src: IPv4, port: int,
                payload: bytes) -> None:
        if self._deliver is not None:
            self._deliver(ifname, src, port, payload)


class SimRouter:
    """One router: its own Host (Finder, process isolation) + FEA + RIB."""

    def __init__(self, network: "SimNetwork", name: str):
        self.network = network
        self.name = name
        self.loop = network.loop
        self.host = Host(loop=network.loop)
        self.packet_io = SimPacketIO()
        self.fea = FeaProcess(self.host, packet_io=self.packet_io)
        self.rib = RibProcess(self.host)
        self.processes: Dict[str, object] = {}
        self._if_count = 0

    def next_ifname(self) -> str:
        self._if_count += 1
        return f"eth{self._if_count - 1}"

    def add_connected_route(self, subnet: IPNet, ifname: str) -> None:
        """Directly install a connected route in the RIB (as the FEA would)."""
        origin = self.rib.v4.origin("connected")
        origin.originate(RibRoute(subnet, IPv4(0), 0, "connected",
                                  ifname=ifname))

    def interface_addr(self, ifname: str) -> IPv4:
        return self.fea.ifmgr.get(ifname).addr

    def fib_lookup(self, addr: IPv4):
        return self.fea.fib4.lookup(addr)


class SimNetwork:
    """The simulation: routers, links, and hop-by-hop forwarding."""

    def __init__(self, loop: Optional[EventLoop] = None):
        self.loop = loop if loop is not None else EventLoop(SimulatedClock())
        self.routers: Dict[str, SimRouter] = {}
        self.links: List[Link] = []
        #: delivered end-to-end payloads: (router, dst, port, payload)
        self.delivered: List[Tuple[str, IPv4, int, bytes]] = []
        self.dropped = 0

    def add_router(self, name: str) -> SimRouter:
        if name in self.routers:
            raise ValueError(f"router {name!r} already exists")
        router = SimRouter(self, name)
        self.routers[name] = router
        return router

    def link(self, router_a: SimRouter, addr_a: str,
             router_b: SimRouter, addr_b: str, *,
             prefix_len: int = 24, delay: float = 0.001,
             cost: int = 1) -> Link:
        """Connect two routers with a point-to-point link.

        Creates the interfaces, installs connected routes in both RIBs.
        """
        ifname_a = router_a.next_ifname()
        ifname_b = router_b.next_ifname()
        interface_a = router_a.fea.ifmgr.create(ifname_a, addr_a, prefix_len,
                                                cost=cost)
        interface_b = router_b.fea.ifmgr.create(ifname_b, addr_b, prefix_len,
                                                cost=cost)
        end_a = _LinkEnd(router_a, ifname_a, interface_a.addr)
        end_b = _LinkEnd(router_b, ifname_b, interface_b.addr)
        link = Link(self, end_a, end_b, delay)
        router_a.packet_io.attach(ifname_a, link, end_a)
        router_b.packet_io.attach(ifname_b, link, end_b)
        self.links.append(link)
        router_a.add_connected_route(interface_a.subnet, ifname_a)
        router_b.add_connected_route(interface_b.subnet, ifname_b)
        return link

    # -- BGP session plumbing --------------------------------------------------
    def bgp_session(self, latency: float = 0.001):
        """A connected byte-stream pair for a BGP peering."""
        return session_pair(self.loop, latency)

    # -- data-plane forwarding -------------------------------------------------
    def send_packet(self, from_router: SimRouter, src: IPv4, dst: IPv4,
                    port: int, payload: bytes, ttl: int = 64) -> None:
        """Inject a packet at *from_router* and let the FIBs carry it."""
        self.forward(from_router, src, dst, port, payload, ttl)

    def forward(self, router: SimRouter, src: IPv4, dst: IPv4, port: int,
                payload: bytes, ttl: int = 64) -> None:
        """One forwarding step through *router*'s simulated kernel FIB."""
        # Destined to one of this router's own addresses?
        for interface in router.fea.ifmgr:
            if interface.addr == dst:
                self.delivered.append((router.name, dst, port, payload))
                return
        if ttl <= 0:
            self.dropped += 1
            return
        entry = router.fea.fib4.lookup(dst)
        if entry is None:
            self.dropped += 1
            return
        ifname = entry.ifname
        if not ifname and not entry.nexthop.is_zero():
            # Recursive lookup: route via a gateway; find its interface.
            via = router.fea.fib4.lookup(entry.nexthop)
            ifname = via.ifname if via is not None else ""
        if not ifname:
            self.dropped += 1
            return
        linked = router.packet_io._ends.get(ifname)
        if linked is None:
            self.dropped += 1
            return
        link, end = linked
        to_end = link.other_end(end)
        hop_dst = dst

        def deliver() -> None:
            if not link.up:
                self.dropped += 1
                return
            self.forward(to_end.router, src, hop_dst, port, payload, ttl - 1)

        self.loop.call_later(link.delay, deliver, name="forward")

    def run(self, duration: float) -> None:
        self.loop.run(duration=duration)

    def run_until(self, predicate: Callable[[], bool],
                  timeout: float = 60.0) -> bool:
        return self.loop.run_until(predicate, timeout=timeout)
