"""Drive the checkers over a source tree and collect findings.

:func:`analyze_paths` is what both entry points use — the ``python -m
repro.analysis`` CLI and the pytest gate in ``tests/test_analysis.py``.
Suppressions (``# repro: allow[RULE] reason``) are applied here, after
all checkers ran, so a checker never needs to know about them; unknown
rule ids inside a suppression are themselves reported (SUP001) so typos
cannot silently disable enforcement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectIndex,
    RULES,
)


def default_checkers() -> List[Checker]:
    from repro.analysis.backendcheck import BackendConstructionChecker
    from repro.analysis.callbacks import CallbackSafetyChecker
    from repro.analysis.determinism import DeterminismChecker
    from repro.analysis.isolation import IsolationChecker
    from repro.analysis.stagecheck import StageMessageChecker
    from repro.analysis.xrlcheck import XrlConformanceChecker

    return [
        XrlConformanceChecker(),
        IsolationChecker(),
        DeterminismChecker(),
        CallbackSafetyChecker(),
        StageMessageChecker(),
        BackendConstructionChecker(),
    ]


def collect_modules(paths: Sequence[Path]) -> Tuple[List[ModuleInfo],
                                                    List[Finding]]:
    """Load every ``.py`` file under *paths*; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleInfo.from_source(source, file_path))
        except SyntaxError as exc:
            errors.append(Finding(str(file_path), exc.lineno or 1, "GEN001",
                                  f"syntax error: {exc.msg}"))
    return modules, errors


def run_checkers(modules: Sequence[ModuleInfo],
                 checkers: Optional[Sequence[Checker]] = None,
                 rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run *checkers* over prepared modules; apply suppressions."""
    if checkers is None:
        checkers = default_checkers()
    wanted = set(rules) if rules is not None else None
    project = ProjectIndex(modules)
    findings: List[Finding] = []
    module_by_path = {str(m.path): m for m in modules}
    for checker in checkers:
        for module in modules:
            for finding in checker.check(module, project):
                if wanted is not None and finding.rule not in wanted:
                    continue
                findings.append(finding)
    kept: List[Finding] = []
    for finding in findings:
        module = module_by_path.get(finding.path)
        if module is not None and module.suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    for module in modules:
        for line, rule_ids in sorted(module.suppressions.items()):
            for rule_id in sorted(rule_ids):
                if rule_id not in RULES:
                    kept.append(Finding(
                        str(module.path), line, "SUP001",
                        f"suppression names unknown rule {rule_id!r}"))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def analyze_paths(paths: Sequence[Path],
                  rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Full run: load sources under *paths*, check, suppress, sort."""
    modules, errors = collect_modules(paths)
    return errors + run_checkers(modules, rules=rules)


def analyze_source(source: str, *, logical: Tuple[str, ...],
                   path: str = "<fixture>",
                   rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Check one in-memory snippet (the test-fixture entry point)."""
    module = ModuleInfo.from_source(source, Path(path), logical=logical)
    return run_checkers([module], rules=rules)
