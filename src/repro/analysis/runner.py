"""Drive the checkers over a source tree and collect findings.

:func:`analyze_paths` is what both entry points use — the ``python -m
repro.analysis`` CLI and the pytest gate in ``tests/test_analysis.py``.
Suppressions (``# repro: allow[RULE] reason``) are applied here, after
all checkers ran, so a checker never needs to know about them; unknown
rule ids inside a suppression are themselves reported (SUP001) so typos
cannot silently disable enforcement, and suppressions that suppressed
nothing are reported (SUP002) so stale allows cannot rot silently.

Parsing happens once per file per process: every checker — and the
interprocedural protocol-graph pass — shares one :class:`ModuleInfo`
per file, memoised across runs keyed on ``(mtime_ns, size)``.  The wall
time spent parsing vs checking (and the cache hit count) is recorded
into the *stats* dict the CLI surfaces under ``--format json``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
    RULES,
)

#: path -> ((mtime_ns, size), ModuleInfo): the single-parse AST cache.
_MODULE_CACHE: Dict[str, Tuple[Tuple[int, int], ModuleInfo]] = {}

#: (path, ruleset fingerprint) -> (module, per-module findings).  The
#: AST cache alone is rule-blind: reusing a finding list computed under
#: one ``--rule`` selection for a different selection would serve stale
#: results, so the fingerprint is part of the key and a hit additionally
#: requires the *same* parsed module object (a reparse invalidates it).
_FINDINGS_CACHE: Dict[Tuple[str, str],
                      Tuple[ModuleInfo, List[Finding]]] = {}


def clear_module_cache() -> None:
    _MODULE_CACHE.clear()
    _FINDINGS_CACHE.clear()


def ruleset_fingerprint(checkers: Sequence[Checker],
                        wanted: Optional[Iterable[str]]) -> str:
    """Stable identity of "which rules could this run emit"."""
    names = ",".join(sorted(type(checker).__name__ for checker in checkers))
    selection = "*" if wanted is None else ",".join(sorted(wanted))
    return f"{names}|{selection}"


def default_checkers() -> List[Checker]:
    from repro.analysis.backendcheck import BackendConstructionChecker
    from repro.analysis.callbacks import CallbackSafetyChecker
    from repro.analysis.determinism import DeterminismChecker
    from repro.analysis.isolation import IsolationChecker
    from repro.analysis.stagecheck import StageMessageChecker
    from repro.analysis.xrlcheck import XrlConformanceChecker

    return [
        XrlConformanceChecker(),
        IsolationChecker(),
        DeterminismChecker(),
        CallbackSafetyChecker(),
        StageMessageChecker(),
        BackendConstructionChecker(),
    ]


def default_project_checkers() -> List[ProjectChecker]:
    from repro.analysis.hotpath import HotPathChecker
    from repro.analysis.protograph import ProtocolGraphChecker

    return [ProtocolGraphChecker(), HotPathChecker()]


def collect_modules(paths: Sequence[Path],
                    stats: Optional[dict] = None) -> Tuple[List[ModuleInfo],
                                                           List[Finding]]:
    """Load every ``.py`` file under *paths*; syntax errors become findings.

    Each file is parsed at most once per process: re-runs (a second CLI
    invocation in one process, every pytest gate after the first) reuse
    the cached :class:`ModuleInfo` unless the file changed on disk.
    """
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    parsed = cached = 0
    parse_seconds = 0.0
    for file_path in files:
        key = str(file_path)
        try:
            stat = file_path.stat()
            signature: Optional[Tuple[int, int]] = (stat.st_mtime_ns,
                                                    stat.st_size)
        except OSError:
            signature = None
        entry = _MODULE_CACHE.get(key)
        if signature is not None and entry is not None \
                and entry[0] == signature:
            modules.append(entry[1])
            cached += 1
            continue
        source = file_path.read_text(encoding="utf-8")
        started = time.perf_counter()  # repro: allow[DET001] tooling timing
        try:
            module = ModuleInfo.from_source(source, file_path)
        except SyntaxError as exc:
            errors.append(Finding(str(file_path), exc.lineno or 1, "GEN001",
                                  f"syntax error: {exc.msg}"))
            continue
        finally:
            parse_seconds += time.perf_counter() - started  # repro: allow[DET001] tooling timing
        parsed += 1
        modules.append(module)
        if signature is not None:
            _MODULE_CACHE[key] = (signature, module)
    if stats is not None:
        stats["files"] = stats.get("files", 0) + len(files)
        stats["parsed"] = stats.get("parsed", 0) + parsed
        stats["parse_cached"] = stats.get("parse_cached", 0) + cached
        stats["parse_seconds"] = stats.get("parse_seconds", 0.0) \
            + parse_seconds
    return modules, errors


def run_checkers(modules: Sequence[ModuleInfo],
                 checkers: Optional[Sequence[Checker]] = None,
                 rules: Optional[Iterable[str]] = None,
                 project_checkers: Sequence[ProjectChecker] = (),
                 stats: Optional[dict] = None,
                 ) -> List[Finding]:
    """Run *checkers* over prepared modules; apply suppressions."""
    if checkers is None:
        checkers = default_checkers()
    wanted = set(rules) if rules is not None else None
    project = ProjectIndex(modules)
    findings: List[Finding] = []
    module_by_path = {str(m.path): m for m in modules}
    fingerprint = ruleset_fingerprint(checkers, wanted)
    check_cached = 0
    for module in modules:
        cache_key = (str(module.path), fingerprint)
        entry = _FINDINGS_CACHE.get(cache_key)
        if entry is not None and entry[0] is module:
            findings.extend(entry[1])
            check_cached += 1
            continue
        module_findings: List[Finding] = []
        for checker in checkers:
            for finding in checker.check(module, project):
                if wanted is not None and finding.rule not in wanted:
                    continue
                module_findings.append(finding)
        _FINDINGS_CACHE[cache_key] = (module, module_findings)
        findings.extend(module_findings)
    if stats is not None:
        stats["check_cached"] = stats.get("check_cached", 0) + check_cached
    for project_checker in project_checkers:
        for finding in project_checker.check_project(modules, project):
            if wanted is not None and finding.rule not in wanted:
                continue
            findings.append(finding)
    kept: List[Finding] = []
    used_suppressions: set = set()
    for finding in findings:
        module = module_by_path.get(finding.path)
        if module is not None and module.suppressed(finding.line, finding.rule):
            used_suppressions.add((finding.path, finding.line, finding.rule))
            continue
        kept.append(finding)
    for module in modules:
        for line, rule_ids in sorted(module.suppressions.items()):
            for rule_id in sorted(rule_ids):
                if rule_id not in RULES:
                    kept.append(Finding(
                        str(module.path), line, "SUP001",
                        f"suppression names unknown rule {rule_id!r}"))
    if wanted is None:
        # Only meaningful on full-rule runs: under a --rule filter the
        # discarded findings would make every other allow[] look unused.
        for module in modules:
            path = str(module.path)
            for comment in module.allow_comments:
                for rule_id in comment.rules:
                    if rule_id not in RULES:
                        continue           # SUP001 already reported it
                    if any((path, line, rule_id) in used_suppressions
                           for line in comment.covers):
                        continue
                    kept.append(Finding(
                        path, comment.line, "SUP002",
                        f"allow[{rule_id}] suppresses nothing here — "
                        f"remove the stale suppression"))
    # SUP001/SUP002 appear once per distinct comment even when a line is
    # covered twice (own line + comment-above), hence the dedup.
    kept = list(dict.fromkeys(kept))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def analyze_paths(paths: Sequence[Path],
                  rules: Optional[Iterable[str]] = None,
                  stats: Optional[dict] = None) -> List[Finding]:
    """Full run: load sources under *paths*, check, suppress, sort.

    Whole-tree runs include the interprocedural protocol-graph pass
    (PRO rules); :func:`analyze_source` does not, because a lone fixture
    snippet is not a closed system.
    """
    modules, errors = collect_modules(paths, stats=stats)
    started = time.perf_counter()  # repro: allow[DET001] tooling timing
    findings = run_checkers(modules, rules=rules,
                            project_checkers=default_project_checkers(),
                            stats=stats)
    if stats is not None:
        stats["check_seconds"] = stats.get("check_seconds", 0.0) \
            + (time.perf_counter() - started)  # repro: allow[DET001] tooling timing
    return errors + findings


def analyze_source(source: str, *, logical: Tuple[str, ...],
                   path: str = "<fixture>",
                   rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Check one in-memory snippet (the test-fixture entry point)."""
    module = ModuleInfo.from_source(source, Path(path), logical=logical)
    return run_checkers([module], rules=rules)


def analyze_sources(sources: Dict[str, str],
                    rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Check a dict of ``{"pkg/mod.py": source}`` as one closed system.

    Unlike :func:`analyze_source` this runs the protocol-graph pass too,
    so tests can exercise PRO rules on small multi-module fixtures.
    """
    modules = [
        ModuleInfo.from_source(source, Path(f"repro/{relpath}"))
        for relpath, source in sorted(sources.items())
    ]
    return run_checkers(modules, rules=rules,
                        project_checkers=default_project_checkers())
