"""Stage message API conformance (paper §5).

The staged-table message API threads the *caller* through every message
so receivers can key shadow/edge state per ``(caller, receiver)`` edge
(multi-parent stages, the sanitizer's per-edge shadows).  Passing the
caller positionally is how historical bugs slipped in — a route handed
where a stage was expected reads fine at the call site and explodes two
stages downstream.  The API therefore makes ``caller`` keyword-only,
and this checker enforces the convention statically:

* a call to ``add_route``/``delete_route``/``lookup_route`` (or the
  batch forms ``add_routes``/``delete_routes``) with more than one
  positional argument, or to ``replace_route`` with more than two, is
  passing ``caller`` positionally (STG001);
* a ``def`` of one of those methods that declares ``caller`` as a
  positional parameter re-opens the hole for every caller (STG001).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ModuleInfo, ProjectIndex

#: message name -> number of route/net positional operands it takes
_MESSAGE_ARITY = {
    "add_route": 1,
    "delete_route": 1,
    "lookup_route": 1,
    "add_routes": 1,
    "delete_routes": 1,
    "replace_route": 2,
}


class StageMessageChecker(Checker):
    name = "stage-message"
    rules = ("STG001",)

    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        path = str(module.path)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(path, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(path, node)

    def _check_call(self, path: str, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        arity = _MESSAGE_ARITY.get(func.attr)
        if arity is None:
            return
        if len(node.args) > arity and not any(
                isinstance(arg, ast.Starred) for arg in node.args):
            yield Finding(
                path, node.lineno, "STG001",
                f"{func.attr}() called with {len(node.args)} positional "
                f"arguments; 'caller' must be passed by keyword "
                f"(caller=...)")

    def _check_def(self, path: str, node: ast.AST) -> Iterator[Finding]:
        arity = _MESSAGE_ARITY.get(node.name)
        if arity is None:
            return
        positional = [a.arg for a in node.args.posonlyargs + node.args.args]
        if "caller" in positional:
            yield Finding(
                path, node.lineno, "STG001",
                f"{node.name}() declares 'caller' as a positional "
                f"parameter; the stage message API requires it "
                f"keyword-only (*, caller=None)")
