"""Stale-callback safety for deferred work (paper §4).

    "the state of the system may change between the initiation of a
    request and its completion ... callbacks must be written carefully
    so that they check that the state they are about to act on is still
    valid."

The repo's own idioms are the reference: ``kill.py`` re-checks listener
identity at delivery time, ``txqueue`` completions consult the pending
call's ``done`` flag, the RIB's deferred resync starts with ``if not
self.running: return``.  This checker makes the discipline mandatory: a
callback handed to ``loop.call_soon``/``loop.call_later`` that captures
process state (references ``self``) must contain — directly, or in a
method it immediately calls — a liveness or generation guard.

The guard heuristic is deliberately broad (any read of a
liveness-flavoured attribute such as ``running``/``alive``/``done``/
``state``/``generation``, or an identity comparison): the goal is to
catch callbacks written with *no* staleness story at all, not to prove
the guard correct.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectIndex,
    enclosing_class,
    enclosing_function,
    walk_with_scopes,
)

_DEFER_METHODS = {"call_soon": 0, "call_later": 1}

#: identifier fragments that signal a liveness/generation/state check
_GUARD_RE = re.compile(
    r"running|alive|done|completed|closed|cancelled|stopped|dead|down"
    r"|state|generation|_gen\b|token|epoch|scheduled|pending|inflight",
)


class CallbackSafetyChecker(Checker):
    name = "callback-safety"
    rules = ("CB001",)

    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        if module.logical[:1] == ("eventloop",):
            return
        path = str(module.path)
        for node, ancestry in walk_with_scopes(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DEFER_METHODS):
                continue
            cb_index = _DEFER_METHODS[node.func.attr]
            if len(node.args) <= cb_index:
                continue
            callback = node.args[cb_index]
            fn = enclosing_function(ancestry)
            cls = enclosing_class(ancestry)
            verdict = _callback_guarded(callback, fn, cls, project)
            if verdict is False:
                yield Finding(
                    path, node.lineno, "CB001",
                    f"callback deferred via {node.func.attr}() captures "
                    "process state with no liveness/generation guard; the "
                    "process may be gone when it fires (see DESIGN.md "
                    "\"Static guarantees\")")


def _callback_guarded(callback: ast.AST, fn: Optional[ast.AST],
                      cls: Optional[ast.ClassDef],
                      project: ProjectIndex) -> Optional[bool]:
    """True = guarded, False = unguarded self-capture, None = not in scope."""
    bodies = _callback_bodies(callback, fn, cls, project)
    if bodies is None:
        return None
    captures_self = any(_references_self(body) for body in bodies)
    if not captures_self:
        return None
    direct = list(bodies)
    for body in direct:
        if _has_guard(body):
            return True
    # One level of indirection: scan the bodies of self-methods the
    # callback invokes (e.g. ``lambda: self._retry_fire(call)``).
    if cls is not None:
        for body in direct:
            for called in _self_method_calls(body):
                target, __ = project.find_method(cls, called)
                if target is not None and _has_guard(target):
                    return True
    return False


def _callback_bodies(callback: ast.AST, fn: Optional[ast.AST],
                     cls: Optional[ast.ClassDef],
                     project: ProjectIndex) -> Optional[List[ast.AST]]:
    """The AST bodies the deferred callback will execute, if resolvable."""
    if isinstance(callback, ast.Lambda):
        return [callback]
    if isinstance(callback, ast.Attribute):
        # self.method / obj.method passed bound
        if isinstance(callback.value, ast.Name) \
                and callback.value.id == "self" and cls is not None:
            target, __ = project.find_method(cls, callback.attr)
            return [target] if target is not None else None
        return None
    if isinstance(callback, ast.Name) and fn is not None:
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == callback.id:
                return [node]
        return None
    if isinstance(callback, ast.Call):
        # functools.partial(self.method, ...) and friends
        func = callback.func
        partial_like = (
            (isinstance(func, ast.Name) and func.id == "partial")
            or (isinstance(func, ast.Attribute) and func.attr == "partial"))
        if partial_like and callback.args:
            return _callback_bodies(callback.args[0], fn, cls, project)
        return None
    return None


def _references_self(body: ast.AST) -> bool:
    return any(isinstance(node, ast.Name) and node.id == "self"
               for node in ast.walk(body))


def _guardish(name: str) -> bool:
    # "up" only as the whole identifier: the substring would match
    # "update"/"group"; the full word (link.up, peer.up) is a guard.
    return bool(_GUARD_RE.search(name)) or name == "up"


def _has_guard(body: ast.AST) -> bool:
    for node in ast.walk(body):
        if isinstance(node, ast.Attribute) and _guardish(node.attr):
            return True
        if isinstance(node, ast.Name) and _guardish(node.id):
            return True
        if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            return True
    return False


def _self_method_calls(body: ast.AST) -> Iterator[str]:
    for node in ast.walk(body):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            yield node.func.attr
