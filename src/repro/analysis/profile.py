"""Sampling profiler: the runtime ground truth for the hot-path set.

:mod:`repro.analysis.hotpath` *derives* the hot set statically; this
module *measures* it.  A daemon thread samples the target thread's stack
via ``sys._current_frames()`` at a fixed interval while the fig13 route
flow runs, recording each stack as ``(co_filename, co_qualname)``
frames.  The agreement test in ``benchmarks/test_fig13_route_flow.py``
then asserts that >=80% of samples that land in repro code are covered
by the static hot set — protocheck's static/dynamic contract, applied to
performance instead of protocol conformance.

The sampler never touches the code under test: no tracing hooks, no
instrumentation, no per-call overhead — only a second thread reading
frames.  That keeps the measured hot set honest.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import List, Optional, Tuple

#: one recorded stack: outermost-last tuples of (filename, qualname)
Stack = Tuple[Tuple[str, str], ...]


def _qualname_of(code) -> str:
    # co_qualname is 3.11+; older interpreters fall back to the bare
    # name, which only loses nesting precision, not coverage.
    return getattr(code, "co_qualname", code.co_name)


class SamplingProfiler:
    """Sample one thread's Python stack from a daemon thread."""

    def __init__(self, interval: float = 0.001,
                 target_thread_id: Optional[int] = None):
        self.interval = interval
        self.target_thread_id = target_thread_id
        self.samples: List[Stack] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self.target_thread_id is None:
            self.target_thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="hotpath-sampler")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        target = self.target_thread_id
        samples = self.samples
        interval = self.interval
        stop = self._stop
        while not stop.is_set():
            frames = sys._current_frames()
            frame = frames.get(target)
            stack = []
            while frame is not None:
                code = frame.f_code
                stack.append((code.co_filename, _qualname_of(code)))
                frame = frame.f_back
            if stack:
                samples.append(tuple(stack))
            del frames, frame
            # The sampler thread may block: it is NOT the event loop.
            time.sleep(interval)  # repro: allow[DET002] sampler thread


def coverage_against(samples: List[Stack], graph) -> Tuple[int, int]:
    """``(covered, considered)`` of *samples* against a HotPathGraph.

    A sample **counts** when at least one of its frames executes inside
    a non-exempt repro module (pure harness/interpreter stacks say
    nothing about the router hot path).  A counted sample is **covered**
    when any such frame's function is in the static hot set — the
    sampled instant was inside (or beneath) a statically-hot function.
    """
    from repro.analysis.hotpath import EXEMPT_PACKAGES, repro_relative

    covered = considered = 0
    for stack in samples:
        in_repro = False
        hit = False
        for filename, qualname in stack:
            rel = repro_relative(filename)
            if rel is None:
                continue
            package = rel.split("/", 1)[0] if "/" in rel else ""
            if package in EXEMPT_PACKAGES:
                continue
            in_repro = True
            if graph.covers_frame(filename, qualname):
                hit = True
                break
        if in_repro:
            considered += 1
            if hit:
                covered += 1
    return covered, considered
