"""Architectural lint for the XORP reproduction (``python -m repro.analysis``).

XORP enforced its inter-process contracts at build time: the IDL compiler
(``xrlc``) checked every stub against the ``.xif`` interface files, the
multi-process design made shared state impossible, and the single-threaded
event loop demanded that nothing block (paper §4, §6.1).  A Python port
keeps none of those guarantees for free — interface drift, cross-process
imports, and wall-clock calls all slip in silently and only surface when a
test happens to exercise them.

This package restores the guarantees statically.  Four AST-based checkers
run over the tree:

``xrl-conformance`` (XRL001–XRL006)
    Every XRL call site (``Xrl(...)`` construction, client stubs,
    ``register_raw_method``, textual ``call_xrl`` literals) and every
    handler registration (``bind``) is cross-checked against the IDL
    catalogue in :mod:`repro.interfaces` — interface and version
    existence, method names, argument names/types/arity, handler
    signatures.

``isolation`` (ISO001–ISO002)
    Process packages (bgp, rib, fea, ...) must not import each other's
    internals; everything crosses via ``repro.xrl`` / ``repro.interfaces``.
    Shared library packages must not reach into process packages either.

``determinism`` (DET001–DET004)
    No wall-clock reads, blocking sleeps, unseeded randomness, or blocking
    socket work outside ``eventloop/`` and ``xrl/transport/`` — these
    break :class:`~repro.eventloop.SimulatedClock` reproducibility and the
    seeded chaos/recovery tests built on it.

``callback-safety`` (CB001)
    Deferred callbacks (``loop.call_soon`` / ``loop.call_later``) that
    capture process state must carry a liveness or generation guard — the
    paper's §4 stale-callback discipline already practised by
    ``txqueue``/``kill.py``.

On top of the per-module checkers, one **interprocedural** pass runs
over the whole tree at once:

``protocol-graph`` (PRO001–PRO006)
    :mod:`repro.analysis.protograph` attributes every XRL send site and
    every ``bind()`` registration to its owning process package and joins
    them through the IDL catalogue into the whole-system process
    interaction graph — the static twin of the paper's Figure 2.  On that
    graph it reports sends nobody handles (PRO001), synchronous request
    cycles that deadlock once processes become OS subprocesses (PRO002),
    reply atoms read but never produced (PRO003), dead handlers
    (PRO004, warning), coexisting interface versions (PRO005, warning)
    and unconsumed reply atoms (PRO006, info).  ``python -m
    repro.analysis --graph-out g.json --graph-dot g.dot`` exports the
    graph itself (byte-stable JSON / Graphviz), and
    :mod:`repro.sanitizer.protocheck` asserts at runtime that every
    traced XRL edge is a subset of this static graph.

``hotpath`` (HOT001–HOT006)
    :mod:`repro.analysis.hotpath` derives the **hot-path function set**
    interprocedurally — everything reachable from the batched stage
    entry points (``add_routes``/``delete_routes`` and friends), the
    XRL dispatch surface and the FIB backends' ``apply`` — and runs
    allocation/complexity cost rules only on that set: singular calls
    where a batch API exists (HOT001), per-route dict/list/``XrlArgs``
    construction (HOT002), un-slotted hot allocations (HOT003,
    warning), re-resolved attribute chains (HOT004, warning), eager
    log formatting (HOT005, warning) and quadratic nested scans
    (HOT006).  ``python -m repro.analysis --hot-report h.json
    --hot-dot h.dot`` exports the hot set itself (byte-stable JSON /
    Graphviz), and a sampling profiler
    (:mod:`repro.analysis.profile`) validates the derivation against
    the measured fig13 runtime hot set.

Findings are suppressed per line with ``# repro: allow[RULE] reason``;
suppressions that no longer suppress anything are themselves flagged
(SUP002).  The suite runs as a pytest gate (``tests/test_analysis.py``)
so drift fails the build the way XORP's xrlc did.
"""

from repro.analysis.core import Finding, ModuleInfo, RULES, Rule
from repro.analysis.hotpath import (
    HotPathChecker,
    HotPathGraph,
    build_hotpath,
    check_hotpath,
)
from repro.analysis.protograph import (
    ProtocolGraph,
    ProtocolGraphChecker,
    build_protocol_graph,
    check_protocol_graph,
)
from repro.analysis.runner import (
    analyze_paths,
    analyze_source,
    analyze_sources,
    collect_modules,
    run_checkers,
)

__all__ = [
    "Finding",
    "HotPathChecker",
    "HotPathGraph",
    "ModuleInfo",
    "ProtocolGraph",
    "ProtocolGraphChecker",
    "RULES",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "build_hotpath",
    "build_protocol_graph",
    "check_hotpath",
    "check_protocol_graph",
    "collect_modules",
    "run_checkers",
]
