"""Finding renderers shared by the analysis and sanitizer CLIs.

Three formats, one contract:

* ``text`` — ``path:line: RULE message``, one per line (human, grep);
* ``json`` — a stable, sorted JSON array (CI artifacts, diffing);
* ``github`` — GitHub Actions workflow commands, so findings surface as
  annotations on the PR diff without any extra action.

GitHub's command syntax requires ``%``, ``\\r`` and ``\\n`` in the free
text to be escaped as ``%25``/``%0D``/``%0A``; property values (the
file name) additionally escape ``,`` and ``:``.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.core import Finding

FORMATS = ("text", "json", "github")


def _escape_data(value: str) -> str:
    return (value.replace("%", "%25")
                 .replace("\r", "%0D")
                 .replace("\n", "%0A"))


def _escape_property(value: str) -> str:
    return (_escape_data(value).replace(":", "%3A").replace(",", "%2C"))


#: finding severity -> GitHub workflow-command level
_GITHUB_LEVELS = {"error": "error", "warning": "warning", "info": "notice"}


def github_annotation(finding: Finding) -> str:
    level = _GITHUB_LEVELS.get(finding.severity, "error")
    return (
        f"::{level} file={_escape_property(finding.path)},"
        f"line={max(finding.line, 1)},"
        f"title={_escape_property(finding.rule)}::"
        f"{_escape_data(f'{finding.rule} {finding.message}')}"
    )


def render_findings(findings: Sequence[Finding], fmt: str) -> str:
    """One string (no trailing newline) in the requested format."""
    if fmt == "json":
        return json.dumps([finding.__dict__ for finding in findings],
                          indent=2, sort_keys=True)
    if fmt == "github":
        return "\n".join(github_annotation(f) for f in findings)
    lines: List[str] = [finding.render() for finding in findings]
    return "\n".join(lines)
