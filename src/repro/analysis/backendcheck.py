"""Pluggable-dataplane discipline: backends are selected, not hardwired.

    "The FEA provides a stable API for communicating with a forwarding
    engine or engines."  (paper §3)

The stability of that API rests on the forwarding engine being a
*configuration choice*: the FEA names a backend ("trie", "flowrule",
"netlink") and :func:`repro.fea.backends.make_backend` resolves it
through the registry.  FEA code that instantiates a concrete backend
class directly (``NetlinkFibBackend(...)``) re-couples the abstraction
layer to one engine — the selection can no longer be swapped by
configuration, and new backends registered by extension code are
invisible to it.  BKD001 flags any such construction inside the ``fea``
package outside ``fea/backends/`` itself (the registry and the backend
implementations are of course allowed to build their own classes).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.core import Checker, Finding, ModuleInfo, ProjectIndex

#: the concrete implementations shipped by repro.fea.backends — known by
#: name so single-file fixtures (and moved call sites) are still caught
#: even when the backends package is outside the analyzed path set.
KNOWN_BACKEND_CLASSES = frozenset({
    "TrieFibBackend", "FlowRuleBackend", "NetlinkFibBackend",
})

#: the abstract base every backend implements
BACKEND_BASE = "FibBackend"


class BackendConstructionChecker(Checker):
    name = "backend"
    rules = ("BKD001",)

    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        if module.package != "fea" or "backends" in module.logical:
            return
        backend_classes = (KNOWN_BACKEND_CLASSES
                           | _backend_subclasses(project))
        path = str(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_class_name(node.func)
            if name in backend_classes:
                yield Finding(
                    path, node.lineno, "BKD001",
                    f"direct construction of FIB backend {name!r} outside "
                    "repro.fea.backends; select backends through "
                    "make_backend(name) so the engine stays a "
                    "configuration choice")


def _call_class_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _backend_subclasses(project: ProjectIndex) -> Set[str]:
    """Class names subclassing FibBackend anywhere in the analyzed set."""
    bases_of = {}
    for name, entries in project.classes.items():
        names = set()
        for __, node in entries:
            for base in node.bases:
                base_name = _call_class_name(base)
                if base_name is not None:
                    names.add(base_name)
        bases_of[name] = names
    subclasses: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name in subclasses:
                continue
            if BACKEND_BASE in bases or bases & subclasses:
                subclasses.add(name)
                changed = True
    return subclasses
