"""The whole-system XRL protocol graph (interprocedural analysis).

The per-module checkers in :mod:`repro.analysis.xrlcheck` prove each
call site and each ``bind()`` well-formed *in isolation*.  This pass
proves the protocol surface is **closed** across the whole tree, the
property the paper's multi-process split rests on (§4, §6.1): every XRL
someone sends is handled by some process, no synchronous request cycle
can deadlock two single-threaded event loops, and reply schemas match
what callers actually read.

It attributes every send construction (``Xrl(...)`` constructors, client
stubs, textual ``call_xrl`` literals, and one level of helper wrappers
like ``RouterManager._call``) and every registration (``bind()``,
``register_raw_method``) to its owning process package, joins them
through the :mod:`repro.interfaces` catalogue, and materialises the
process-interaction graph.  Rules on that graph:

* ``PRO001`` — send with no handler bound in any process (error);
* ``PRO002`` — synchronous request edge on an inter-process request
  cycle: a deadlock once each process is a real OS subprocess — the
  static gate for ROADMAP item 2 (error);
* ``PRO003`` — caller reads a reply atom the handler's IDL reply spec
  never produces, or reads it with the wrong typed getter (error);
* ``PRO004`` — handler bound but never sent to from anywhere (warning);
* ``PRO005`` — multiple versions of one interface live at once (warning);
* ``PRO006`` — declared reply atom no caller anywhere reads (info).

The graph itself is exported as byte-stable JSON (``--graph-out``) and
Graphviz dot (``--graph-dot``); :mod:`repro.sanitizer.protocheck` checks
runtime-observed trace edges against it (dynamic ⊆ static agreement).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
    closest_assignment,
    enclosing_class as _enclosing_class,
    enclosing_function as _enclosing_function,
    resolve_str_values,
    walk_with_scopes as _walk_with_scopes,
)
from repro.analysis.isolation import HARNESS_PACKAGES, PROCESS_PACKAGES
from repro.analysis.xrlcheck import (
    _const_str,
    _is_idl_name,
    _is_interface_call,
    load_catalogue,
    resolve_bind_attr,
)

#: XrlArgs reader method -> IDL type tag (None = untyped access)
GETTER_TYPES: Dict[str, Optional[str]] = {
    "get_i32": "i32", "get_u32": "u32", "get_i64": "i64", "get_u64": "u64",
    "get_txt": "txt", "get_bool": "bool", "get_ipv4": "ipv4",
    "get_ipv6": "ipv6", "get_ipv4net": "ipv4net", "get_ipv6net": "ipv6net",
    "get_mac": "mac", "get_binary": "binary", "get_list": "list",
    "atom": None, "has": None,
}


# ---------------------------------------------------------------------------
# graph model
# ---------------------------------------------------------------------------

@dataclass
class SendSite:
    """One statically attributed XRL send construction."""

    package: str
    site: str                      # "rib/rib.py:253" (logical, stable)
    line: int
    path: str                      # real path, for findings
    interface: str                 # "rib/1.0"
    methods: Tuple[str, ...]       # resolved method names (may be empty)
    sync: bool = False
    via: str = "ctor"              # ctor | stub | textual | wrapper
    target: Optional[str] = None   # literal target, when constant
    #: caller-side reply reads: (atom-name, getter-type-or-None)
    reads: List[Tuple[str, Optional[str]]] = field(default_factory=list)


@dataclass
class BindSite:
    """One handler registration."""

    package: str
    site: str
    line: int
    path: str
    interface: str
    methods: Optional[Tuple[str, ...]] = None   # None = the whole interface


@dataclass
class DynamicSite:
    """A send whose interface cannot be resolved statically."""

    package: str
    site: str
    line: int
    path: str
    reason: str


@dataclass
class Edge:
    """Aggregated inter-package request edge."""

    src: str
    dst: str
    interface: str
    sync: bool
    methods: Set[str] = field(default_factory=set)
    sites: Set[str] = field(default_factory=set)


class ProtocolGraph:
    """Everything the interprocedural pass learned about the XRL surface."""

    def __init__(self, catalogue: Dict[str, object]):
        self.catalogue = catalogue
        self.packages: Dict[str, str] = {}      # name -> kind
        self.send_sites: List[SendSite] = []
        self.bind_sites: List[BindSite] = []
        self.dynamic_sites: List[DynamicSite] = []
        self.edges: Dict[Tuple[str, str, str, bool], Edge] = {}
        self.class_map: Dict[str, str] = {}     # router class name -> package
        self.consumed_atoms: Set[str] = set()   # every atom name read anywhere

    # -- derived views ----------------------------------------------------
    def binders(self, fullname: str) -> List[BindSite]:
        return [b for b in self.bind_sites if b.interface == fullname]

    def bound_methods(self, fullname: str) -> Optional[Set[str]]:
        """Methods handled for *fullname*; None when nothing binds it."""
        binders = self.binders(fullname)
        if not binders:
            return None
        methods: Set[str] = set()
        iface = self.catalogue.get(fullname)
        for bind in binders:
            if bind.methods is None:
                if iface is not None:
                    methods.update(iface.methods)
            else:
                methods.update(bind.methods)
        return methods

    def sent_methods(self, fullname: str) -> Set[str]:
        methods: Set[str] = set()
        for site in self.send_sites:
            if site.interface == fullname:
                methods.update(site.methods)
        return methods

    def add_edge(self, src: str, dst: str, interface: str, sync: bool,
                 methods: Iterable[str], site: str) -> None:
        key = (src, dst, interface, sync)
        edge = self.edges.get(key)
        if edge is None:
            edge = self.edges[key] = Edge(src, dst, interface, sync)
        edge.methods.update(methods)
        edge.sites.add(site)

    # -- exports ----------------------------------------------------------
    def to_json_dict(self) -> dict:
        interfaces: Dict[str, dict] = {}
        used = ({s.interface for s in self.send_sites}
                | {b.interface for b in self.bind_sites})
        for fullname in sorted(used):
            bound = self.bound_methods(fullname)
            interfaces[fullname] = {
                "binders": sorted({b.package for b in self.binders(fullname)}),
                "senders": sorted({s.package for s in self.send_sites
                                   if s.interface == fullname}),
                "sent_methods": sorted(self.sent_methods(fullname)),
                "bound_methods": sorted(bound) if bound is not None else [],
                "in_catalogue": fullname in self.catalogue,
            }
        dynamic: Dict[str, List[str]] = {}
        for site in self.dynamic_sites:
            dynamic.setdefault(site.package, []).append(site.site)
        return {
            "schema": "repro.protograph/1",
            "packages": {name: {"kind": kind}
                         for name, kind in sorted(self.packages.items())},
            "interfaces": interfaces,
            "edges": [
                {
                    "from": e.src, "to": e.dst, "interface": e.interface,
                    "sync": e.sync, "methods": sorted(e.methods),
                    "sites": sorted(e.sites),
                }
                for e in sorted(self.edges.values(),
                                key=lambda e: (e.src, e.dst, e.interface,
                                               e.sync))
            ],
            "send_sites": [
                {
                    "package": s.package, "site": s.site,
                    "interface": s.interface, "methods": sorted(s.methods),
                    "sync": s.sync, "via": s.via, "target": s.target,
                    "reads": sorted({a for a, _t in s.reads}),
                }
                for s in sorted(self.send_sites,
                                key=lambda s: (s.site, s.line, s.interface))
            ],
            "bind_sites": [
                {
                    "package": b.package, "site": b.site,
                    "interface": b.interface,
                    "methods": (sorted(b.methods)
                                if b.methods is not None else "*"),
                }
                for b in sorted(self.bind_sites,
                                key=lambda b: (b.site, b.line, b.interface))
            ],
            "dynamic_senders": {pkg: sorted(sites)
                                for pkg, sites in sorted(dynamic.items())},
            "router_classes": dict(sorted(self.class_map.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        shapes = {"process": "box", "harness": "ellipse", "shared": "folder"}
        lines = [
            "digraph protograph {",
            "  rankdir=LR;",
            '  node [fontname="Helvetica", fontsize=11];',
            '  edge [fontname="Helvetica", fontsize=9];',
        ]
        used = {e.src for e in self.edges.values()} \
            | {e.dst for e in self.edges.values()}
        for name in sorted(used):
            kind = self.packages.get(name, "shared")
            lines.append(f'  "{name}" [shape={shapes[kind]}];')
        for edge in sorted(self.edges.values(),
                           key=lambda e: (e.src, e.dst, e.interface, e.sync)):
            style = ', color="red", penwidth=2.0' if edge.sync else ""
            label = edge.interface + (" (sync)" if edge.sync else "")
            lines.append(f'  "{edge.src}" -> "{edge.dst}" '
                         f'[label="{label}"{style}];')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# helper-wrapper recognition (one level: rtrmgr._call, cli._sync, ...)
# ---------------------------------------------------------------------------

@dataclass
class _Wrapper:
    """A function whose body builds-and-sends an Xrl from its parameters."""

    name: str
    params: Tuple[str, ...]            # ordered, including a leading self
    roles: Dict[str, int]              # param name -> Xrl ctor position 0..3
    sync: bool
    returns_args: bool                 # returns the send_sync reply XrlArgs


def _find_wrappers(tree: ast.Module) -> Dict[str, _Wrapper]:
    wrappers: Dict[str, _Wrapper] = {}
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = tuple(a.arg for a in fn.args.args)
        roles: Dict[str, int] = {}
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Xrl" and len(node.args) >= 4):
                continue
            candidate: Dict[str, int] = {}
            for position in (1, 2, 3):
                arg = node.args[position]
                if isinstance(arg, ast.Name) and arg.id in params:
                    candidate[arg.id] = position
            if len(candidate) == 3:
                if isinstance(node.args[0], ast.Name) \
                        and node.args[0].id in params:
                    candidate[node.args[0].id] = 0
                roles = candidate
                break
        if not roles:
            continue
        sync = any(isinstance(n, ast.Call)
                   and isinstance(n.func, ast.Attribute)
                   and n.func.attr == "send_sync"
                   for n in ast.walk(fn))
        if not sync and not any(
                isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
                and n.func.attr in ("send", "enqueue") for n in ast.walk(fn)):
            continue
        returns_args = False
        reply_vars: Set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Tuple)
                    and len(node.targets[0].elts) == 2
                    and all(isinstance(e, ast.Name)
                            for e in node.targets[0].elts)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "send_sync"):
                reply_vars.add(node.targets[0].elts[1].id)
        for node in ast.walk(fn):
            if (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in reply_vars):
                returns_args = True
        wrappers[fn.name] = _Wrapper(fn.name, params, roles, sync,
                                     returns_args)
    return wrappers


# ---------------------------------------------------------------------------
# reply-read extraction
# ---------------------------------------------------------------------------

def _getter_reads(subtree: ast.AST, var: str
                  ) -> List[Tuple[str, Optional[str]]]:
    """Every ``var.get_*("name")`` style read inside *subtree*."""
    reads: List[Tuple[str, Optional[str]]] = []
    for node in ast.walk(subtree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in GETTER_TYPES
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.args):
            name = _const_str(node.args[0])
            if name is not None:
                reads.append((name, GETTER_TYPES[node.func.attr]))
    return reads


def _window_reads(fn: ast.AST, var: str,
                  start_line: int) -> List[Tuple[str, Optional[str]]]:
    """Reads of *var* between its assignment at *start_line* and the next."""
    assign_lines = sorted(
        node.lineno for node in ast.walk(fn)
        if isinstance(node, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == var
                or (isinstance(t, ast.Tuple)
                    and any(isinstance(e, ast.Name) and e.id == var
                            for e in t.elts))
                for t in node.targets))
    end_line = None
    for line in assign_lines:
        if line > start_line:
            end_line = line
            break
    reads: List[Tuple[str, Optional[str]]] = []
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in GETTER_TYPES
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.args
                and node.lineno > start_line
                and (end_line is None or node.lineno < end_line)):
            name = _const_str(node.args[0])
            if name is not None:
                reads.append((name, GETTER_TYPES[node.func.attr]))
    return reads


def _callback_reads(cb: Optional[ast.AST], fn: Optional[ast.AST],
                    cls: Optional[ast.ClassDef], project: ProjectIndex
                    ) -> List[Tuple[str, Optional[str]]]:
    """Reads a reply callback performs on its XrlArgs parameter.

    Resolves inline lambdas, one-level local ``def``\\ s, and ``self._cb``
    methods; anything else (forwarded parameters, partials) is left
    unresolved — conservative, so PRO003 never guesses.
    """
    if cb is None:
        return []
    if isinstance(cb, ast.Lambda):
        params = [a.arg for a in cb.args.args]
        if len(params) >= 2:
            return _getter_reads(cb.body, params[1])
        return []
    target_def: Optional[ast.AST] = None
    skip_self = 0
    if isinstance(cb, ast.Name) and fn is not None:
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == cb.id:
                target_def = node
                break
    elif isinstance(cb, ast.Attribute) and isinstance(cb.value, ast.Name) \
            and cb.value.id == "self" and cls is not None:
        target_def, _complete = project.find_method(cls, cb.attr)
        skip_self = 1
    if target_def is None:
        return []
    params = [a.arg for a in target_def.args.args][skip_self:]
    if len(params) >= 2:
        return _getter_reads(target_def, params[1])
    return []


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------

def _package_of(module: ModuleInfo) -> str:
    # Top-level modules (repro/interfaces.py, repro/__init__.py) belong
    # to the shared package root rather than a package of their own.
    return module.package or "repro"


def _package_kind(package: str) -> str:
    if package in PROCESS_PACKAGES:
        return "process"
    if package in HARNESS_PACKAGES:
        return "harness"
    return "shared"


def _logical_site(module: ModuleInfo, line: int) -> str:
    return "/".join(module.logical) + f".py:{line}"


class _Collector:
    """One pass over one module, feeding the graph."""

    def __init__(self, graph: ProtocolGraph, project: ProjectIndex,
                 idl_constants: Dict[str, object]):
        self.graph = graph
        self.project = project
        self.idl_constants = idl_constants

    def collect(self, module: ModuleInfo) -> None:
        graph = self.graph
        package = _package_of(module)
        graph.packages.setdefault(package, _package_kind(package))
        wrappers = _find_wrappers(module.tree)
        ctors: Dict[int, SendSite] = {}
        pending_sends: List[Tuple[ast.Call, Optional[ast.AST],
                                  Optional[ast.ClassDef],
                                  List[ast.AST]]] = []

        for node, ancestry in _walk_with_scopes(module.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (isinstance(stmt, ast.Assign)
                            and any(isinstance(t, ast.Name)
                                    and t.id == "process_name"
                                    for t in stmt.targets)):
                        name = _const_str(stmt.value)
                        if name is not None:
                            self._map_class(name, package)
            if not isinstance(node, ast.Call):
                continue
            fn = _enclosing_function(ancestry)
            cls = _enclosing_class(ancestry)
            # global read inventory (feeds PRO006)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in GETTER_TYPES and node.args):
                name = _const_str(node.args[0])
                if name is not None:
                    graph.consumed_atoms.add(name)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "create_router" and node.args):
                name = _const_str(node.args[0])
                if name is not None:
                    self._map_class(name, package)
            self._collect_ctor(module, package, node, fn, ctors, wrappers)
            self._collect_bind(module, package, node, fn)
            self._collect_raw(module, package, node)
            self._collect_textual(module, package, node)
            self._collect_stub(module, package, node, fn, cls)
            self._collect_wrapper_call(module, package, node, fn, wrappers)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "send_sync", "enqueue")
                    and node.args):
                pending_sends.append((node, fn, cls, list(ancestry)))

        for call, fn, cls, ancestry in pending_sends:
            self._attach_send(call, fn, cls, ancestry, ctors)
        graph.send_sites.extend(ctors.values())

    def _map_class(self, name: str, package: str) -> None:
        existing = self.graph.class_map.get(name)
        if existing is not None and existing != package:
            self.graph.class_map[name] = "?"       # ambiguous: never narrow
        else:
            self.graph.class_map[name] = package

    # -- Xrl(...) constructors --------------------------------------------
    def _collect_ctor(self, module: ModuleInfo, package: str, call: ast.Call,
                      fn: Optional[ast.AST], ctors: Dict[int, SendSite],
                      wrappers: Dict[str, _Wrapper]) -> None:
        if not (isinstance(call.func, ast.Name) and call.func.id == "Xrl"
                and len(call.args) >= 4):
            return
        iface = _const_str(call.args[1])
        version = _const_str(call.args[2])
        if iface is None or version is None:
            # A wrapper's internal constructor is represented by its
            # resolved call sites, not as a dynamic send of its own.
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and fn.name in wrappers:
                return
            self.graph.dynamic_sites.append(DynamicSite(
                package, _logical_site(module, call.lineno), call.lineno,
                str(module.path),
                "Xrl constructed from a non-constant interface/version"))
            return
        methods = tuple(sorted({m for m, _line in resolve_str_values(
            call.args[3], fn, call.lineno)}))
        ctors[id(call)] = SendSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path),
            interface=f"{iface}/{version}", methods=methods,
            target=_const_str(call.args[0]))

    # -- send attachment (sync flag + reply reads) ------------------------
    def _attach_send(self, call: ast.Call, fn: Optional[ast.AST],
                     cls: Optional[ast.ClassDef], ancestry: List[ast.AST],
                     ctors: Dict[int, SendSite]) -> None:
        xrl_node: Optional[ast.AST] = call.args[0]
        site = ctors.get(id(xrl_node))
        if site is None and isinstance(xrl_node, ast.Name) \
                and fn is not None:
            assign = closest_assignment(fn, xrl_node.id, call.lineno)
            if assign is not None:
                site = ctors.get(id(assign.value))
        if site is None:
            return
        attr = call.func.attr  # type: ignore[union-attr]
        if attr == "send_sync":
            site.sync = True
            for node in reversed(ancestry):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Tuple) \
                        and len(node.targets[0].elts) == 2 \
                        and isinstance(node.targets[0].elts[1], ast.Name):
                    reply_var = node.targets[0].elts[1].id
                    if fn is not None and not reply_var.startswith("_"):
                        site.reads.extend(
                            _window_reads(fn, reply_var, node.lineno))
                    break
            return
        callback: Optional[ast.AST] = None
        if attr == "send" and len(call.args) > 1:
            callback = call.args[1]
        for keyword in call.keywords:
            if keyword.arg in ("callback", "on_reply"):
                callback = keyword.value
        site.reads.extend(_callback_reads(callback, fn, cls, self.project))

    # -- bind(...) registrations ------------------------------------------
    def _collect_bind(self, module: ModuleInfo, package: str, call: ast.Call,
                      fn: Optional[ast.AST]) -> None:
        bind_attr = resolve_bind_attr(call, fn)
        if bind_attr is None:
            return
        iface_node: Optional[ast.AST] = None
        if _is_idl_name(bind_attr.value) is not None:
            iface_node = bind_attr.value
        else:
            for arg in call.args:
                if _is_idl_name(arg) is not None or _is_interface_call(arg):
                    iface_node = arg
                    break
        if iface_node is None:
            return
        fullname = self._idl_fullname(iface_node)
        if fullname is None:
            return
        self.graph.bind_sites.append(BindSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path), interface=fullname))

    def _idl_fullname(self, node: ast.AST) -> Optional[str]:
        name = _is_idl_name(node)
        if name is not None:
            iface = self.idl_constants.get(name)
            return iface.fullname if iface is not None else None
        if _is_interface_call(node) and node.args:
            return _const_str(node.args[0])
        return None

    # -- raw registrations -------------------------------------------------
    def _collect_raw(self, module: ModuleInfo, package: str,
                     call: ast.Call) -> None:
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "register_raw_method" and call.args):
            return
        method_path = _const_str(call.args[0])
        if method_path is None:
            return
        parts = method_path.split("/")
        if len(parts) != 3:
            return
        self.graph.bind_sites.append(BindSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path),
            interface=f"{parts[0]}/{parts[1]}", methods=(parts[2],)))

    # -- textual XRLs ------------------------------------------------------
    def _collect_textual(self, module: ModuleInfo, package: str,
                         call: ast.Call) -> None:
        is_call_xrl = (
            (isinstance(call.func, ast.Name)
             and call.func.id in ("call_xrl", "call_xrl_checked"))
            or (isinstance(call.func, ast.Attribute)
                and call.func.attr in ("call_xrl", "call_xrl_checked")))
        if not is_call_xrl:
            return
        text_node = call.args[1] if len(call.args) > 1 else None
        text = _const_str(text_node)
        if text is None:
            # The CLI's ``call <xrl>`` facility: this package can emit any
            # XRL at runtime; the dynamic/static subset check treats the
            # package's otherwise-unmatched runtime edges as explained.
            self.graph.dynamic_sites.append(DynamicSite(
                package, _logical_site(module, call.lineno), call.lineno,
                str(module.path), "textual XRL built from dynamic text"))
            return
        from repro.xrl.error import XrlError
        from repro.xrl.xrl import Xrl
        try:
            xrl = Xrl.from_text(text)
        except XrlError:
            return     # XRL006's job
        self.graph.send_sites.append(SendSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path),
            interface=f"{xrl.interface}/{xrl.version}",
            methods=(xrl.method,), sync=True, via="textual",
            target=xrl.target))

    # -- client stubs ------------------------------------------------------
    def _collect_stub(self, module: ModuleInfo, package: str, call: ast.Call,
                      fn: Optional[ast.AST],
                      cls: Optional[ast.ClassDef]) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        receiver = call.func.value
        iface = None
        target: Optional[str] = None
        if isinstance(receiver, ast.Name) and fn is not None:
            assign = closest_assignment(fn, receiver.id, call.lineno)
            if assign is not None:
                iface, target = self._client_interface(assign.value)
        elif isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id == "self" and cls is not None:
            for stmt in ast.walk(cls):
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                and t.attr == receiver.attr
                                for t in stmt.targets)):
                    iface, target = self._client_interface(stmt.value)
                    if iface is not None:
                        break
        if iface is None or call.func.attr not in iface.methods:
            return
        site = SendSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path),
            interface=iface.fullname, methods=(call.func.attr,),
            via="stub", target=target)
        callback = call.args[0] if call.args else None
        site.reads.extend(_callback_reads(callback, fn, cls, self.project))
        self.graph.send_sites.append(site)

    def _client_interface(self, node: ast.AST):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "client"):
            fullname = self._idl_fullname(node.func.value)
            iface = (self.graph.catalogue.get(fullname)
                     if fullname is not None else None)
            target = (_const_str(node.args[1])
                      if len(node.args) > 1 else None)
            return iface, target
        return None, None

    # -- helper wrappers ---------------------------------------------------
    def _collect_wrapper_call(self, module: ModuleInfo, package: str,
                              call: ast.Call, fn: Optional[ast.AST],
                              wrappers: Dict[str, _Wrapper]) -> None:
        if isinstance(call.func, ast.Attribute):
            wrapper = wrappers.get(call.func.attr)
        elif isinstance(call.func, ast.Name):
            wrapper = wrappers.get(call.func.id)
        else:
            wrapper = None
        if wrapper is None:
            return
        params = list(wrapper.params)
        if params and params[0] == "self" \
                and isinstance(call.func, ast.Attribute):
            params = params[1:]
        by_param: Dict[str, ast.AST] = dict(zip(params, call.args))
        for keyword in call.keywords:
            if keyword.arg is not None:
                by_param[keyword.arg] = keyword.value
        values: Dict[int, Optional[str]] = {}
        method_node: Optional[ast.AST] = None
        for param, position in wrapper.roles.items():
            node = by_param.get(param)
            if position == 3:
                method_node = node
            else:
                values[position] = _const_str(node) if node is not None \
                    else None
        iface, version = values.get(1), values.get(2)
        if iface is None or version is None:
            return
        methods = tuple(sorted({m for m, _line in resolve_str_values(
            method_node, fn, call.lineno)})) if method_node is not None \
            else ()
        site = SendSite(
            package=package, site=_logical_site(module, call.lineno),
            line=call.lineno, path=str(module.path),
            interface=f"{iface}/{version}", methods=methods,
            sync=wrapper.sync, via="wrapper", target=values.get(0))
        if wrapper.returns_args and fn is not None:
            for node in ast.walk(fn):
                if (isinstance(node, ast.Assign)
                        and node.lineno == call.lineno
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    site.reads.extend(_window_reads(
                        fn, node.targets[0].id, node.lineno))
        self.graph.send_sites.append(site)


def build_protocol_graph(modules: Sequence[ModuleInfo],
                         project: Optional[ProjectIndex] = None
                         ) -> ProtocolGraph:
    """Collect the whole-tree protocol graph from parsed modules."""
    catalogue, idl_constants = load_catalogue()
    graph = ProtocolGraph(catalogue)
    if project is None:
        project = ProjectIndex(modules)
    collector = _Collector(graph, project, idl_constants)
    for module in modules:
        collector.collect(module)
    # Ambiguous class names must never narrow an edge.
    graph.class_map = {name: pkg for name, pkg in graph.class_map.items()
                       if pkg != "?"}
    for site in graph.send_sites:
        binders = {b.package for b in graph.binders(site.interface)}
        if not binders:
            continue
        if site.target is not None:
            narrowed = graph.class_map.get(site.target)
            if narrowed in binders:
                binders = {narrowed}
        for dst in binders:
            graph.add_edge(site.package, dst, site.interface, site.sync,
                           site.methods, site.site)
    return graph


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

def _strongly_connected(nodes: Set[str],
                        adjacency: Dict[str, Set[str]]) -> Dict[str, int]:
    """Node -> SCC id (iterative Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    scc_of: Dict[str, int] = {}
    counter = [0]
    scc_counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(
                        adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_counter[0]
                    if member == node:
                        break
                scc_counter[0] += 1
    return scc_of


def _shortest_path(src: str, dst: str, adjacency: Dict[str, Set[str]],
                   allowed: Set[str]) -> Optional[List[str]]:
    """BFS path src -> dst through *allowed* nodes."""
    frontier = [[src]]
    seen = {src}
    while frontier:
        next_frontier: List[List[str]] = []
        for path in frontier:
            for child in sorted(adjacency.get(path[-1], ())):
                if child == dst:
                    return path + [child]
                if child in seen or child not in allowed:
                    continue
                seen.add(child)
                next_frontier.append(path + [child])
        frontier = next_frontier
    return None


def check_protocol_graph(graph: ProtocolGraph) -> List[Finding]:
    """Run PRO001–PRO006 over a built graph."""
    findings: List[Finding] = []
    catalogue = graph.catalogue
    sorted_sends = sorted(graph.send_sites, key=lambda s: (s.site, s.line))
    sorted_binds = sorted(graph.bind_sites, key=lambda b: (b.site, b.line))

    # PRO001: unresolvable sends.
    for site in sorted_sends:
        iface = catalogue.get(site.interface)
        if iface is None:
            continue                       # XRL001's job
        bound = graph.bound_methods(site.interface)
        if bound is None:
            findings.append(Finding(
                site.path, site.line, "PRO001",
                f"{site.package} sends {site.interface} but no process "
                f"binds that interface — unresolvable at runtime"))
            continue
        missing = [m for m in site.methods
                   if m in iface.methods and m not in bound]
        if missing:
            findings.append(Finding(
                site.path, site.line, "PRO001",
                f"{site.package} sends {site.interface}/"
                f"{','.join(missing)} but no registration handles "
                f"{'it' if len(missing) == 1 else 'them'} "
                f"— unresolvable at runtime"))

    # PRO002: synchronous edges on inter-process request cycles.
    adjacency: Dict[str, Set[str]] = {}
    nodes: Set[str] = set()
    for edge in graph.edges.values():
        if edge.src == edge.dst:
            continue
        adjacency.setdefault(edge.src, set()).add(edge.dst)
        nodes.update((edge.src, edge.dst))
    scc_of = _strongly_connected(nodes, adjacency)
    for edge in sorted(graph.edges.values(),
                       key=lambda e: (e.src, e.dst, e.interface)):
        if not edge.sync or edge.src == edge.dst:
            continue
        if scc_of.get(edge.src) is None \
                or scc_of.get(edge.src) != scc_of.get(edge.dst):
            continue
        members = {n for n, s in scc_of.items() if s == scc_of[edge.src]}
        back = _shortest_path(edge.dst, edge.src, adjacency, members)
        cycle = " -> ".join([edge.src] + (back or [edge.dst, edge.src]))
        first_site = sorted(edge.sites)[0]
        anchor = _site_for(graph, first_site)
        findings.append(Finding(
            anchor[0], anchor[1], "PRO002",
            f"synchronous {edge.interface} request {edge.src} -> "
            f"{edge.dst} lies on the request cycle {cycle}; once each "
            f"process is a real OS subprocess with one event loop, both "
            f"ends block forever (gates the multi-process split)"))

    # PRO003: reply reads the IDL never produces (or mistyped getters).
    for site in sorted_sends:
        iface = catalogue.get(site.interface)
        if iface is None or not site.reads:
            continue
        known = [m for m in site.methods if m in iface.methods]
        if not known or len(known) != len(site.methods):
            continue
        declared: Dict[str, Set[str]] = {}
        for method in known:
            for atom, atom_type in iface.methods[method].signature[1]:
                declared.setdefault(atom, set()).add(atom_type)
        label = f"{site.interface}/{'|'.join(known)}"
        reported: Set[Tuple[str, Optional[str]]] = set()
        for atom, getter_type in site.reads:
            if (atom, getter_type) in reported:
                continue
            reported.add((atom, getter_type))
            if atom not in declared:
                returns = ",".join(sorted(declared)) or "<none>"
                findings.append(Finding(
                    site.path, site.line, "PRO003",
                    f"caller reads reply atom {atom!r} which {label} "
                    f"never produces (declared returns: {returns})"))
            elif getter_type is not None \
                    and getter_type not in declared[atom]:
                findings.append(Finding(
                    site.path, site.line, "PRO003",
                    f"caller reads reply atom {atom!r} as {getter_type} "
                    f"but {label} declares it "
                    f"{','.join(sorted(declared[atom]))}"))

    # PRO004: bound-but-never-sent handlers (warning).
    unresolved_ifaces = {s.interface for s in graph.send_sites
                        if not s.methods}
    seen_dead: Set[Tuple[str, str]] = set()
    for bind in sorted_binds:
        if bind.interface in unresolved_ifaces:
            continue
        iface = catalogue.get(bind.interface)
        if iface is None:
            continue
        sent = graph.sent_methods(bind.interface)
        bound = (set(iface.methods) if bind.methods is None
                 else set(bind.methods))
        for method in sorted(bound - sent):
            if (bind.interface, method) in seen_dead:
                continue
            seen_dead.add((bind.interface, method))
            findings.append(Finding(
                bind.path, bind.line, "PRO004",
                f"handler {bind.interface}/{method} is bound but nothing "
                f"in the tree sends it (dead protocol surface)",
                severity="warning"))

    # PRO005: multiple live versions of one interface (warning).
    live: Dict[str, Dict[str, Tuple[str, int]]] = {}
    for site in sorted_sends:
        name, _slash, version = site.interface.partition("/")
        live.setdefault(name, {}).setdefault(version,
                                             (site.path, site.line))
    for bind in sorted_binds:
        name, _slash, version = bind.interface.partition("/")
        live.setdefault(name, {}).setdefault(version,
                                             (bind.path, bind.line))
    for name in sorted(live):
        versions = live[name]
        if len(versions) < 2:
            continue
        first = min(versions.values())
        findings.append(Finding(
            first[0], first[1], "PRO005",
            f"interface {name!r} is live in multiple versions "
            f"simultaneously: {', '.join(sorted(versions))}",
            severity="warning"))

    # PRO006: declared reply atoms nobody reads (info).
    seen_unread: Set[Tuple[str, str, str]] = set()
    for site in sorted_sends:
        iface = catalogue.get(site.interface)
        if iface is None:
            continue
        for method in sorted(site.methods):
            if method not in iface.methods:
                continue
            for atom, _atom_type in iface.methods[method].signature[1]:
                key = (site.interface, method, atom)
                if key in seen_unread or atom in graph.consumed_atoms:
                    continue
                seen_unread.add(key)
                findings.append(Finding(
                    site.path, site.line, "PRO006",
                    f"reply atom {atom!r} of {site.interface}/{method} is "
                    f"never read by any caller", severity="info"))
    return findings


def _site_for(graph: ProtocolGraph, logical_site: str) -> Tuple[str, int]:
    """Map a logical site string back to (real path, line) for findings."""
    for site in graph.send_sites:
        if site.site == logical_site:
            return site.path, site.line
    path, _colon, line = logical_site.rpartition(":")
    return path, int(line or 0)


class ProtocolGraphChecker(ProjectChecker):
    """The runner-facing wrapper: build the graph, run the PRO rules."""

    name = "protocol-graph"
    rules = ("PRO001", "PRO002", "PRO003", "PRO004", "PRO005", "PRO006")

    def __init__(self) -> None:
        self.last_graph: Optional[ProtocolGraph] = None

    def check_project(self, modules: Sequence[ModuleInfo],
                      project: ProjectIndex) -> Iterable[Finding]:
        graph = build_protocol_graph(modules, project)
        self.last_graph = graph
        return check_protocol_graph(graph)
