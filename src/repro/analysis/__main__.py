"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any **error**-severity
finding survives suppression — the same contract as XORP's build-time
xrlc check, so CI wires this straight into the gate.  Warnings (PRO004,
PRO005) and info findings (PRO006) are reported but never gate.

``--graph-out``/``--graph-dot`` additionally export the whole-system
protocol graph (byte-stable JSON / Graphviz dot) built by
:mod:`repro.analysis.protograph` from the same parsed modules;
``--hot-report``/``--hot-dot`` do the same for the hot-path function
set and its per-function static cost annotations
(:mod:`repro.analysis.hotpath`, schema ``repro.hotpath/1``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.core import RULES
from repro.analysis.report import FORMATS, render_findings
from repro.analysis.runner import (
    collect_modules,
    default_project_checkers,
    run_checkers,
)


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Architectural lint: IDL conformance, shared-nothing "
                    "isolation, event-loop determinism, callback safety, "
                    "whole-system protocol graph.",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to check "
                             "(default: the installed repro package)")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="RULE",
                        help="only report this rule id (repeatable)")
    parser.add_argument("--format", choices=FORMATS, default="text")
    parser.add_argument("--graph-out", type=Path, metavar="FILE",
                        help="write the protocol graph as byte-stable JSON")
    parser.add_argument("--graph-dot", type=Path, metavar="FILE",
                        help="write the protocol graph as Graphviz dot")
    parser.add_argument("--hot-report", type=Path, metavar="FILE",
                        help="write the hot-path set + static cost "
                             "annotations as byte-stable JSON")
    parser.add_argument("--hot-dot", type=Path, metavar="FILE",
                        help="write the hot-path call graph as Graphviz dot")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  [{rule.paper}]  {rule.summary}")
        return 0

    paths = args.paths or [_default_root()]
    stats: dict = {}
    modules, errors = collect_modules(paths, stats=stats)
    started = time.perf_counter()  # repro: allow[DET001] tooling timing
    findings = errors + run_checkers(
        modules, rules=args.rules,
        project_checkers=default_project_checkers(), stats=stats)
    stats["check_seconds"] = stats.get("check_seconds", 0.0) \
        + (time.perf_counter() - started)  # repro: allow[DET001] tooling timing

    if args.graph_out or args.graph_dot:
        from repro.analysis.protograph import build_protocol_graph

        graph = build_protocol_graph(modules)
        if args.graph_out:
            args.graph_out.write_text(graph.to_json(), encoding="utf-8")
        if args.graph_dot:
            args.graph_dot.write_text(graph.to_dot(), encoding="utf-8")

    if args.hot_report or args.hot_dot:
        from repro.analysis.hotpath import build_hotpath

        hot_graph = build_hotpath(modules)
        if args.hot_report:
            args.hot_report.write_text(hot_graph.to_json(), encoding="utf-8")
        if args.hot_dot:
            args.hot_dot.write_text(hot_graph.to_dot(), encoding="utf-8")

    if args.format == "json":
        payload = {
            "findings": [finding.__dict__ for finding in findings],
            "timing": {
                "files": stats.get("files", 0),
                "parsed": stats.get("parsed", 0),
                "parse_cached": stats.get("parse_cached", 0),
                "check_cached": stats.get("check_cached", 0),
                "parse_seconds": round(stats.get("parse_seconds", 0.0), 6),
                "check_seconds": round(stats.get("check_seconds", 0.0), 6),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rendered = render_findings(findings, args.format)
        if rendered:
            print(rendered)
    error_count = sum(1 for f in findings if f.severity == "error")
    if findings and args.format == "text":
        print(f"{len(findings)} finding(s), {error_count} error(s)",
              file=sys.stderr)
    return 1 if error_count else 0


if __name__ == "__main__":
    sys.exit(main())
