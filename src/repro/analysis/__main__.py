"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding survives
suppression — the same contract as XORP's build-time xrlc check, so CI
wires this straight into the gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.core import RULES
from repro.analysis.report import FORMATS, render_findings
from repro.analysis.runner import analyze_paths


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Architectural lint: IDL conformance, shared-nothing "
                    "isolation, event-loop determinism, callback safety.",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to check "
                             "(default: the installed repro package)")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="RULE",
                        help="only report this rule id (repeatable)")
    parser.add_argument("--format", choices=FORMATS, default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  [{rule.paper}]  {rule.summary}")
        return 0

    paths = args.paths or [_default_root()]
    findings = analyze_paths(paths, rules=args.rules)
    rendered = render_findings(findings, args.format)
    if rendered:
        print(rendered)
    if findings and args.format == "text":
        print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
