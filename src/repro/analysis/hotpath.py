"""Hot-path cost analyzer: the static twin of the fig13 benchmark.

ROADMAP open item 1 wants a 1M-route full feed at >=100k routes/sec,
which the per-route hot path can lose one allocation at a time.  This
pass makes that cost a *checked* property (the paper's xrlc philosophy,
section 6.1, applied to performance): it derives the **hot-path function
set** interprocedurally and runs allocation/complexity rules over every
function in it.

Hot-set derivation
------------------

Roots, then transitive closure over a name-based call graph:

* the **batched stage entry points** — every definition of the stage
  message surface (``add_routes``/``delete_routes`` and their singular
  twins, ``originate_batch``/``withdraw_batch``) on any class in the
  process/core packages; a route crosses several of these per hop;
* the **XRL dispatch surface** — every ``xrl_*`` handler, the whole
  ``repro.xrl`` package (frame codec, router, transports), the transmit
  queue, and the event loop's turn dispatcher (every XRL and deferred
  stage batch is dispatched from a loop turn);
* ``FibBackend.apply`` — the dataplane sink each batch drains into.

Call edges are resolved CHA-style by name: ``self.m()`` and ``x.m()``
reach every project definition of ``m``; bare calls reach module-level
functions; instantiation reaches ``__init__``; a function *reference*
passed as an argument (callback registration: ``call_soon(self._pump)``,
``on_reply=...``) is an edge too.  Callback attributes are resolved one
constructor deep: ``self._emit = emit`` inside a class whose call sites
pass ``self._emit_fea4`` makes ``self._emit(...)`` reach ``_emit_fea4``.
Over-approximation is deliberate — a too-large hot set costs a few extra
warnings; a too-small one misses regressions (and fails the dynamic
agreement test in ``benchmarks/test_fig13_route_flow.py``, which asserts
this set covers >=80% of sampling-profile frames of the real flow).

Cost rules (HOT001-HOT006)
--------------------------

Over every hot function:

* HOT001 (error) — singular-call fallback inside a loop where a batch
  API exists (``t.add_route`` per route where ``add_routes`` is defined);
* HOT002 (error) — per-item dict/list construction or ``Xrl``/``XrlArgs``
  chains inside a per-route loop (what PR 4's coalescing eliminated);
* HOT003 (warning) — class instantiated in a hot loop without
  ``__slots__`` (a per-route ``__dict__`` allocation);
* HOT004 (warning) — attribute chain >=2 deep re-resolved inside a loop
  body (hoist it to a local before the loop);
* HOT005 (warning) — eager string formatting passed to a logging/trace
  sink on the hot path (guard on ``.enabled`` or format lazily);
* HOT006 (error) — nested iteration over a table or batch inside
  per-route processing (quadratic batch handling).

``# repro: allow[HOT...]`` suppressions apply as for every other rule.
The ``--hot-report``/``--hot-dot`` CLI flags export the hot set with
per-function static cost annotations as byte-stable JSON (schema
``repro.hotpath/1``) and Graphviz dot.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
)

SCHEMA = "repro.hotpath/1"

#: tooling/harness packages that are never part of the router hot path
EXEMPT_PACKAGES = frozenset({
    "analysis", "sanitizer", "obs", "experiments", "simnet",
})

#: singular message -> its batched counterpart (HOT001's pair table)
BATCH_COUNTERPARTS = {
    "add_route": "add_routes",
    "delete_route": "delete_routes",
    "originate": "originate_batch",
    "withdraw": "withdraw_batch",
    "withdraw_if_present": "withdraw_batch",
    "add_entry4": "add_entries4",
    "add_entry6": "add_entries6",
    "delete_entry4": "delete_entries4",
    "delete_entry6": "delete_entries6",
    "enqueue": "enqueue_batch",
    "call": "call_batch",
    "submit": "submit_batch",
    "add": "add_batch",
    "delete": "delete_batch",
}

#: pair-table entries generic enough to collide with builtins (set.add,
#: list.append neighbours); they only fire on receivers whose attribute
#: name marks them as route-flow machinery.
_GENERIC_SINGULARS = frozenset({"add", "delete", "call", "submit"})
_FLOW_RECEIVERS = frozenset({
    "driver", "flow", "txq", "sender", "backend",
})

#: names that mark an iterable as "a batch of routes" (per-route loops)
BATCHY_NAMES = frozenset({
    "routes", "nets", "entries", "ops", "prefixes", "batch",
    "updates", "withdrawals", "nlri", "helds", "removed",
})

#: iterator-producing methods that mark an inner loop as a table scan
_SCAN_METHODS = frozenset({"items", "values", "keys", "iterator", "entries"})

#: attribute sinks treated as logging/trace emission (HOT005)
LOG_SINKS = frozenset({"log", "debug", "info", "warning", "error", "trace",
                       "record"})

#: stage message surface whose definitions root the hot set
STAGE_ENTRY_POINTS = frozenset({
    "add_routes", "delete_routes", "add_route", "delete_route",
    "replace_route", "originate", "originate_batch",
    "withdraw", "withdraw_batch",
})

#: modules rooted wholesale: the XRL frame/dispatch machinery, the
#: transmit queue, and the event-loop turn dispatcher all run per
#: message, so every definition in them is hot by construction.
_DISPATCH_PACKAGES = frozenset({"xrl", "eventloop"})
_DISPATCH_MODULES = frozenset({("core", "txqueue")})

_RULE_SEVERITY = {
    "HOT001": "error",
    "HOT002": "error",
    "HOT003": "warning",
    "HOT004": "warning",
    "HOT005": "warning",
    "HOT006": "error",
}


def _rel_path(module: ModuleInfo) -> str:
    return "/".join(module.logical) + ".py"


def _is_exempt(module: ModuleInfo) -> bool:
    return module.package in EXEMPT_PACKAGES


@dataclass
class HotFunction:
    """One function in the project universe, plus its static cost facts."""

    key: str                      # "rib/merge.py:MergeStage.add_routes"
    rel: str                      # "rib/merge.py"
    qualname: str                 # matches CPython's co_qualname
    name: str
    line: int
    module: ModuleInfo
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    #: names this function calls (attribute names and bare names)
    calls: Set[str] = field(default_factory=set)
    #: project class names this function instantiates
    instantiations: Set[str] = field(default_factory=set)
    #: function names referenced without being called (callbacks)
    refs: Set[str] = field(default_factory=set)
    #: keys of directly nested function definitions
    nested: List[str] = field(default_factory=list)
    #: param names, in order, 'self' excluded
    params: Tuple[str, ...] = ()
    #: static cost annotations, filled for hot members
    loops: int = 0
    loop_depth: int = 0
    batchy_loops: int = 0
    findings: List[Finding] = field(default_factory=list)


class HotPathGraph:
    """The derived hot set plus its internal call edges and findings."""

    def __init__(self) -> None:
        self.functions: Dict[str, HotFunction] = {}
        self.roots: Dict[str, str] = {}      # key -> root family
        self.hot: Dict[str, HotFunction] = {}
        self.edges: Dict[str, Set[str]] = {}  # hot key -> hot callee keys
        self.findings: List[Finding] = []
        #: (rel, qualname) pairs for fast profile-frame matching
        self._frame_keys: Set[Tuple[str, str]] = set()

    # -- dynamic-agreement support ----------------------------------------
    def covers_frame(self, filename: str, qualname: str) -> bool:
        """Is the runtime frame (co_filename, co_qualname) in the hot set?"""
        rel = repro_relative(filename)
        if rel is None:
            return False
        return (rel, qualname) in self._frame_keys

    # -- exports -----------------------------------------------------------
    def to_json_dict(self) -> dict:
        hot = {}
        for key in sorted(self.hot):
            fn = self.hot[key]
            hot[key] = {
                "path": fn.rel,
                "qualname": fn.qualname,
                "line": fn.line,
                "root": self.roots.get(key),
                "loops": fn.loops,
                "loop_depth": fn.loop_depth,
                "batchy_loops": fn.batchy_loops,
                "instantiates": sorted(fn.instantiations),
                "findings": sorted({f.rule for f in fn.findings}),
                "calls": sorted(self.edges.get(key, ())),
            }
        rules: Dict[str, int] = {}
        for finding in self.findings:
            rules[finding.rule] = rules.get(finding.rule, 0) + 1
        return {
            "schema": SCHEMA,
            "roots": {key: family for key, family
                      in sorted(self.roots.items())},
            "hot": hot,
            "stats": {
                "functions": len(self.functions),
                "hot_functions": len(self.hot),
                "edges": sum(len(v) for v in self.edges.values()),
                "findings_by_rule": rules,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        lines = ["digraph hotpath {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9];']
        for key in sorted(self.hot):
            fn = self.hot[key]
            family = self.roots.get(key)
            shape = ' style="filled", fillcolor="lightyellow",' \
                if family else ""
            label = f"{fn.rel}\\n{fn.qualname}"
            if family:
                label += f"\\n[{family}]"
            badges = sorted({f.rule for f in fn.findings})
            if badges:
                label += "\\n" + ",".join(badges)
            lines.append(f'  "{key}" [{shape} label="{label}"];')
        for key in sorted(self.edges):
            for callee in sorted(self.edges[key]):
                lines.append(f'  "{key}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def repro_relative(filename: str) -> Optional[str]:
    """Map an absolute co_filename to its repro-relative path, or None."""
    parts = filename.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return None


# -- universe construction ---------------------------------------------------

def _qualname(ancestry: Sequence[ast.AST], node: ast.AST) -> str:
    parts: List[str] = []
    for ancestor in ancestry:
        if isinstance(ancestor, ast.ClassDef):
            parts.append(ancestor.name)
        elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parts.append(ancestor.name)
            parts.append("<locals>")
    parts.append(node.name)  # type: ignore[attr-defined]
    return ".".join(parts)


def _funcref_name(node: ast.AST) -> Optional[str]:
    """The function name a bare reference points at, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _Universe:
    """Every function/class in the non-exempt modules, plus alias facts."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = [m for m in modules if not _is_exempt(m)]
        self.fn_by_name: Dict[str, List[HotFunction]] = {}
        self.fn_by_key: Dict[str, HotFunction] = {}
        self.classes: Dict[str, List[Tuple[ModuleInfo, ast.ClassDef]]] = {}
        #: class name -> __init__ HotFunction (first definition wins)
        self.init_of: Dict[str, HotFunction] = {}
        #: attribute name -> function names it can hold (callback aliases)
        self.aliases: Dict[str, Set[str]] = {}
        self._index()
        self._resolve_aliases()

    def _index(self) -> None:
        for module in self.modules:
            for node, ancestry in _walk_with_ancestry(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append(
                        (module, node))
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                cls = None
                for ancestor in reversed(ancestry):
                    if isinstance(ancestor, ast.ClassDef):
                        cls = ancestor
                        break
                    if isinstance(ancestor, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                        break
                qual = _qualname(ancestry, node)
                rel = _rel_path(module)
                fn = HotFunction(
                    key=f"{rel}:{qual}", rel=rel, qualname=qual,
                    name=node.name, line=node.lineno, module=module,
                    node=node, class_name=cls.name if cls else None,
                )
                args = node.args
                names = [a.arg for a in (args.posonlyargs + args.args)]
                if names and names[0] in ("self", "cls"):
                    names = names[1:]
                fn.params = tuple(names)
                self.fn_by_key[fn.key] = fn
                self.fn_by_name.setdefault(node.name, []).append(fn)
        for name, entries in self.classes.items():
            for module, cls in entries:
                for member in cls.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) \
                            and member.name == "__init__":
                        rel = _rel_path(module)
                        key = f"{rel}:{_init_qualname(cls)}"
                        init = self.fn_by_key.get(key)
                        if init is not None and name not in self.init_of:
                            self.init_of[name] = init
        for fn in self.fn_by_key.values():
            self._collect_calls(fn)

    def _collect_calls(self, fn: HotFunction) -> None:
        """Fill calls/instantiations/refs/nested for one function."""
        for node, ancestry in _walk_with_ancestry(fn.node):
            if node is fn.node:
                continue
            # Stay inside this function: nested defs are their own nodes.
            owner = _enclosing_def(ancestry)
            if owner is not fn.node:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{fn.qualname}.<locals>.{node.name}"
                fn.nested.append(f"{fn.rel}:{nested_qual}")
                continue
            if isinstance(node, ast.Call):
                callee = _funcref_name(node.func)
                if callee is not None:
                    if callee in self.classes:
                        fn.instantiations.add(callee)
                    else:
                        fn.calls.add(callee)
                for arg in list(node.args) + [kw.value for kw in
                                              node.keywords]:
                    ref = _funcref_name(arg)
                    if ref is not None and ref in self.fn_by_name:
                        fn.refs.add(ref)

    def _resolve_aliases(self) -> None:
        """One-constructor-deep callback aliasing (see module docstring).

        Variables: ``("param", fn_name, param)`` and ``("attr", name)``.
        Constants flow from function references at call sites through
        parameter bindings into ``self.X = param`` assignments; a short
        fixpoint handles wrappers forwarding a callback one more level.
        """
        consts: Dict[Tuple, Set[str]] = {}
        links: Dict[Tuple, Set[Tuple]] = {}

        def bind(callee: HotFunction, call: ast.Call,
                 caller: HotFunction) -> None:
            positional = list(call.args)
            for index, param in enumerate(callee.params):
                arg = positional[index] if index < len(positional) else None
                if arg is None:
                    for kw in call.keywords:
                        if kw.arg == param:
                            arg = kw.value
                            break
                if arg is None:
                    continue
                target = ("param", callee.name, param)
                ref = _funcref_name(arg)
                if isinstance(arg, ast.Name) and arg.id in caller.params:
                    links.setdefault(("param", caller.name, arg.id),
                                     set()).add(target)
                elif ref is not None and ref in self.fn_by_name:
                    consts.setdefault(target, set()).add(ref)

        for fn in self.fn_by_key.values():
            for node, ancestry in _walk_with_ancestry(fn.node):
                if _enclosing_def(ancestry) is not fn.node:
                    continue
                if isinstance(node, ast.Call):
                    callee_name = _funcref_name(node.func)
                    if callee_name is None:
                        continue
                    if callee_name in self.classes:
                        init = self.init_of.get(callee_name)
                        if init is not None:
                            bind(init, node, fn)
                    else:
                        for callee in self.fn_by_name.get(callee_name, ()):
                            bind(callee, node, fn)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        var = ("attr", target.attr)
                        ref = _funcref_name(node.value)
                        if isinstance(node.value, ast.Name) \
                                and node.value.id in fn.params:
                            links.setdefault(
                                ("param", fn.name, node.value.id),
                                set()).add(var)
                        elif ref is not None and ref in self.fn_by_name:
                            consts.setdefault(var, set()).add(ref)
        for _ in range(10):
            changed = False
            for source, targets in links.items():
                names = consts.get(source)
                if not names:
                    continue
                for target in targets:
                    bucket = consts.setdefault(target, set())
                    before = len(bucket)
                    bucket.update(names)
                    changed = changed or len(bucket) != before
            if not changed:
                break
        for var, names in consts.items():
            if var[0] == "attr":
                self.aliases.setdefault(var[1], set()).update(names)

    # -- edge resolution ---------------------------------------------------
    def callees(self, fn: HotFunction) -> Set[str]:
        keys: Set[str] = set(fn.nested)
        names: Set[str] = set()
        for called in fn.calls:
            names.add(called)
            names.update(self.aliases.get(called, ()))
        names.update(fn.refs)
        for name in names:
            for target in self.fn_by_name.get(name, ()):
                keys.add(target.key)
        for cls_name in fn.instantiations:
            init = self.init_of.get(cls_name)
            if init is not None:
                keys.add(init.key)
        return keys


def _init_qualname(cls: ast.ClassDef) -> str:
    # __init__ qualnames are only computed for top-level classes; nested
    # classes would need the full ancestry, which _index already builds
    # for fn_by_key, so a miss here simply skips the alias shortcut.
    return f"{cls.name}.__init__"


def _walk_with_ancestry(root: ast.AST):
    stack: List[ast.AST] = []

    def visit(node: ast.AST):
        yield node, tuple(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(root)


def _enclosing_def(ancestry: Sequence[ast.AST]) -> Optional[ast.AST]:
    for node in reversed(ancestry):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


# -- root selection ----------------------------------------------------------

def _root_family(fn: HotFunction) -> Optional[str]:
    module = fn.module
    if fn.class_name is not None and fn.name in STAGE_ENTRY_POINTS:
        return "stage-entry"
    if fn.name.startswith("xrl_"):
        return "xrl-dispatch"
    if module.package in _DISPATCH_PACKAGES \
            or module.logical in _DISPATCH_MODULES:
        return "xrl-dispatch"
    if fn.name == "apply" and fn.class_name is not None \
            and module.logical and module.logical[0] == "fea":
        return "fib-backend"
    return None


# -- cost-rule scanning ------------------------------------------------------

class _SlotsCache:
    """Memoised "instances of this class carry no __dict__" facts."""

    def __init__(self, universe: _Universe):
        self.universe = universe
        self._cache: Dict[str, bool] = {}

    def has_slots(self, name: str, _seen: Optional[Set[str]] = None) -> bool:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        seen = _seen or set()
        if name in seen:
            return True
        seen.add(name)
        entries = self.universe.classes.get(name)
        if not entries:
            # Unresolvable (imported/builtin): assume fine, do not warn.
            return True
        __, cls = entries[0]
        if any((base_name := _funcref_name(base)) is not None
               and base_name.endswith(("Enum", "Flag"))
               for base in cls.bases):
            # Enum "instantiation" is a member lookup, not an allocation.
            self._cache[name] = True
            return True
        slotted = any(
            isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets)
            for stmt in cls.body
        )
        result = slotted
        if slotted:
            for base in cls.bases:
                base_name = _funcref_name(base)
                if base_name is None or base_name == "object":
                    continue
                if base_name in self.universe.classes \
                        and not self.has_slots(base_name, seen):
                    result = False
                    break
        self._cache[name] = result
        return result

    def is_exception(self, name: str) -> bool:
        if name.endswith(("Error", "Exception", "Warning")):
            return True
        entries = self.universe.classes.get(name)
        if not entries:
            return False
        __, cls = entries[0]
        return any(
            (base_name := _funcref_name(base)) is not None
            and (base_name.endswith(("Error", "Exception", "Warning"))
                 or self.is_exception(base_name))
            for base in cls.bases
        )


def _attr_chain(node: ast.Attribute) -> Optional[Tuple[str, ...]]:
    """("self", "next_table", "add_routes") for self.next_table.add_routes."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _batchy_iter(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in BATCHY_NAMES
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
                "zip", "enumerate", "sorted", "list", "reversed", "tuple"):
            return any(_batchy_iter(arg) for arg in node.args)
    return False


def _scan_like(node: ast.AST) -> bool:
    """Does this iterable look like a table or batch scan (HOT006)?"""
    if isinstance(node, ast.Name):
        return node.id in BATCHY_NAMES
    if isinstance(node, ast.Attribute):
        chain = _attr_chain(node)
        return chain is not None and chain[0] == "self"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SCAN_METHODS:
            return _scan_like(func.value) or isinstance(func.value, ast.Name)
        if isinstance(func, ast.Name) and func.id in (
                "sorted", "list", "tuple", "reversed"):
            return any(_scan_like(arg) for arg in node.args)
    return False


def _eager_format(node: ast.AST) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod, ast.Add)):
        return _eager_format(node.left) or _eager_format(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "format":
        return True
    return False


@dataclass
class _Loop:
    node: ast.AST
    batchy: bool
    targets: Set[str]


class _FunctionScanner:
    """Run the HOT cost rules over one hot function's body."""

    def __init__(self, fn: HotFunction, universe: _Universe,
                 slots: _SlotsCache):
        self.fn = fn
        self.universe = universe
        self.slots = slots
        self.path = str(fn.module.path)
        self.findings: List[Finding] = []
        self.loops: List[_Loop] = []
        self.loop_count = 0
        self.max_depth = 0
        self.batchy_count = 0
        self._flagged_chains: Set[Tuple[str, ...]] = set()
        self._flagged_classes: Set[str] = set()
        self._enabled_guard = 0
        self._in_raise = 0

    def emit(self, line: int, rule: str, message: str) -> None:
        self.findings.append(Finding(
            self.path, line, rule, message,
            severity=_RULE_SEVERITY[rule]))

    # -- helpers -----------------------------------------------------------
    def _loop_targets(self) -> Set[str]:
        names: Set[str] = set()
        for loop in self.loops:
            names.update(loop.targets)
        return names

    def _in_loop(self) -> bool:
        return bool(self.loops)

    def _in_batchy_loop(self) -> bool:
        return any(loop.batchy for loop in self.loops)

    # -- walk --------------------------------------------------------------
    def run(self) -> None:
        for stmt in self.fn.node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
        self.fn.loops = self.loop_count
        self.fn.loop_depth = self.max_depth
        self.fn.batchy_loops = self.batchy_count
        self.fn.findings = list(self.findings)

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are scanned as their own hot functions
        handler = getattr(self, f"_visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
            return
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_For(self, node: ast.For) -> None:
        batchy = _batchy_iter(node.iter)
        self._check_hot006(node)
        self.visit(node.iter)
        self._push_loop(node, batchy, _names_in(node.target))
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.loops.pop()

    _visit_AsyncFor = _visit_For

    def _visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._push_loop(node, False, set())
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.loops.pop()

    def _push_loop(self, node: ast.AST, batchy: bool,
                   targets: Set[str]) -> None:
        self.loops.append(_Loop(node, batchy, targets))
        self.loop_count += 1
        self.max_depth = max(self.max_depth, len(self.loops))
        if batchy:
            self.batchy_count += 1

    def _visit_If(self, node: ast.If) -> None:
        guard = any(
            (isinstance(n, ast.Attribute) and n.attr == "enabled")
            or (isinstance(n, ast.Name) and n.id == "enabled")
            for n in ast.walk(node.test))
        self.visit(node.test)
        if guard:
            self._enabled_guard += 1
        for stmt in node.body:
            self.visit(stmt)
        if guard:
            self._enabled_guard -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_Raise(self, node: ast.Raise) -> None:
        self._in_raise += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._in_raise -= 1

    def _visit_Call(self, node: ast.Call) -> None:
        name = _funcref_name(node.func)
        if name is not None:
            self._check_hot001(node, name)
            self._check_hot002_call(node, name)
            self._check_hot003(node, name)
            self._check_hot005(node, name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_Dict(self, node: ast.Dict) -> None:
        if node.keys and self._in_batchy_loop():
            self.emit(node.lineno, "HOT002",
                      "per-route dict construction inside a batch loop — "
                      "hoist or vectorize it")
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_List(self, node: ast.List) -> None:
        if node.elts and self._in_batchy_loop() \
                and isinstance(node.ctx, ast.Load):
            self.emit(node.lineno, "HOT002",
                      "per-route list construction inside a batch loop — "
                      "build the batch once outside the loop")
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    _visit_Set = _visit_List  # same shape: a per-item container display

    def _visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_hot004(node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, [node.elt])

    def _visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, [node.elt])

    def _visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, [node.elt])

    def _visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, [node.key, node.value])

    def _visit_comp(self, node: ast.AST, elts: List[ast.AST]) -> None:
        # A comprehension is a loop for allocation purposes (HOT003) but
        # is itself the vectorized idiom, so HOT001/002/004 skip it.
        generators = node.generators  # type: ignore[attr-defined]
        targets: Set[str] = set()
        for gen in generators:
            self.visit(gen.iter)
            targets.update(_names_in(gen.target))
        batchy = any(_batchy_iter(gen.iter) for gen in generators)
        self._push_loop(node, batchy, targets)
        saved, self.loops[-1].batchy = self.loops[-1].batchy, False
        for gen in generators:
            for cond in gen.ifs:
                self.visit(cond)
        for elt in elts:
            self._scan_comp_elt(elt)
        self.loops.pop()
        del saved

    def _scan_comp_elt(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = _funcref_name(sub.func)
                if name is not None:
                    self._check_hot003(sub, name)

    # -- the rules ---------------------------------------------------------
    def _check_hot001(self, node: ast.Call, name: str) -> None:
        if not self._in_loop():
            return
        counterpart = BATCH_COUNTERPARTS.get(name)
        if counterpart is None \
                or counterpart not in self.universe.fn_by_name:
            return
        func = node.func
        if isinstance(func, ast.Name):
            receiver: Optional[Tuple[str, ...]] = None
        else:
            assert isinstance(func, ast.Attribute)
            chain = _attr_chain(func)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                # self.add_route(...) inside add_routes IS the batch API
                # decomposing itself — the one legitimate singular loop.
                return
            if isinstance(func.value, ast.Call) \
                    and isinstance(func.value.func, ast.Name) \
                    and func.value.func.id == "super":
                return  # super().add_route(...): same self-decomposition
            receiver = chain[:-1] if chain else None
        if name in _GENERIC_SINGULARS:
            # Too generic to trust bare: only fire on known flow machinery
            # receivers (self.driver.add, self.txq.enqueue, flow.submit).
            if receiver is None or not (set(receiver) & _FLOW_RECEIVERS):
                return
        where = ".".join(receiver) if receiver else name
        self.emit(node.lineno, "HOT001",
                  f"per-route {name}() on {where!r} inside a loop — "
                  f"the batched {counterpart}() exists; send one batch")

    def _check_hot002_call(self, node: ast.Call, name: str) -> None:
        if name in ("Xrl", "XrlArgs") and self._in_batchy_loop():
            self.emit(node.lineno, "HOT002",
                      f"per-route {name}(...) construction inside a batch "
                      "loop — build one vectorized XRL per segment "
                      "(PR 4's coalescing contract)")

    def _check_hot003(self, node: ast.Call, name: str) -> None:
        if not self._in_loop() or self._in_raise:
            return
        if name not in self.universe.classes or name in self._flagged_classes:
            return
        if self.slots.is_exception(name):
            return
        if not self.slots.has_slots(name):
            self._flagged_classes.add(name)
            self.emit(node.lineno, "HOT003",
                      f"{name} instantiated on the hot path but defines no "
                      "__slots__ — every instance pays a __dict__")

    def _check_hot004(self, node: ast.Attribute) -> None:
        if not self._in_loop() or not isinstance(node.ctx, ast.Load):
            return
        chain = _attr_chain(node)
        if chain is None or len(chain) < 3:  # base + >=2 attribute hops
            return
        if chain[0] in self._loop_targets() or chain in self._flagged_chains:
            return
        self._flagged_chains.add(chain)
        # Flag only the outermost chain; mark sub-chains as seen so
        # a.b.c does not also report a.b.
        for end in range(3, len(chain)):
            self._flagged_chains.add(chain[:end])
        self.emit(node.lineno, "HOT004",
                  f"attribute chain {'.'.join(chain)} re-resolved every "
                  "iteration — hoist it to a local before the loop")

    def _check_hot005(self, node: ast.Call, name: str) -> None:
        if name not in LOG_SINKS or self._enabled_guard:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        if any(_eager_format(arg) for arg in node.args):
            self.emit(node.lineno, "HOT005",
                      f"eagerly formatted string passed to .{name}() on the "
                      "hot path — it is built even when the sink is "
                      "disabled; guard on .enabled or format lazily")

    def _check_hot006(self, node: ast.For) -> None:
        if not self._in_batchy_loop():
            return
        if not _scan_like(node.iter):
            return
        if _names_in(node.iter) & self._loop_targets():
            return  # per-item sub-iteration is linear, not quadratic
        self.emit(node.lineno, "HOT006",
                  "nested table/batch iteration inside per-route "
                  "processing — quadratic batch handling; restructure "
                  "to one pass")


# -- public entry points -----------------------------------------------------

def build_hotpath(modules: Sequence[ModuleInfo]) -> HotPathGraph:
    """Derive the hot set over *modules* and run the cost rules on it."""
    graph = HotPathGraph()
    universe = _Universe(modules)
    graph.functions = dict(universe.fn_by_key)
    for fn in universe.fn_by_key.values():
        family = _root_family(fn)
        if family is not None:
            graph.roots[fn.key] = family
    # BFS closure over the call graph.
    pending = sorted(graph.roots)
    hot: Dict[str, HotFunction] = {}
    while pending:
        key = pending.pop()
        if key in hot:
            continue
        fn = universe.fn_by_key.get(key)
        if fn is None:
            continue
        hot[key] = fn
        for callee in universe.callees(fn):
            if callee not in hot:
                pending.append(callee)
    graph.hot = hot
    for key, fn in hot.items():
        graph.edges[key] = {callee for callee in universe.callees(fn)
                            if callee in hot}
    slots = _SlotsCache(universe)
    findings: List[Finding] = []
    for key in sorted(hot):
        scanner = _FunctionScanner(hot[key], universe, slots)
        scanner.run()
        findings.extend(scanner.findings)
    graph.findings = findings
    graph._frame_keys = {(fn.rel, fn.qualname) for fn in hot.values()}
    return graph


def check_hotpath(graph: HotPathGraph) -> List[Finding]:
    return list(graph.findings)


class HotPathChecker(ProjectChecker):
    """Project hook: derive the hot set, run HOT001-HOT006 over it."""

    name = "hotpath"
    rules = ("HOT001", "HOT002", "HOT003", "HOT004", "HOT005", "HOT006")

    def __init__(self) -> None:
        self.last_graph: Optional[HotPathGraph] = None

    def check_project(self, modules: Sequence[ModuleInfo],
                      project: ProjectIndex) -> Iterable[Finding]:
        graph = build_hotpath(modules)
        self.last_graph = graph
        return check_hotpath(graph)
