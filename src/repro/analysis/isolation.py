"""Shared-nothing isolation: processes only meet through XRLs.

    "This multi-process design limits the coupling between components;
    misbehaving code, such as an experimental routing protocol, cannot
    directly corrupt the memory of another process."  (paper §4)

In the C++ original that isolation was physical — separate address
spaces.  Here it is a discipline, and this checker is what enforces it:
a module inside one process package (``bgp``, ``rib``, ``fea``, ...)
must not import another process package (ISO001); everything crosses the
boundary through ``repro.xrl`` / ``repro.interfaces``.  Shared library
packages (``net``, ``core``, ``policy``, ...) are loaded into every
process, so they must not reach into any process package either
(ISO002) — that would smuggle one process's internals into all of them.

The composition harnesses (``experiments``, ``simnet``) assemble whole
multi-process routers by design — the analogue of XORP's test scripts —
and are exempt.  The Router Manager's module launcher is the one
legitimate in-process exception and carries explicit suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ModuleInfo, ProjectIndex

#: packages that model one OS process each (paper §4's functional units)
PROCESS_PACKAGES = frozenset({
    "bgp", "rib", "fea", "rip", "ospf", "pim", "mld6igmp",
    "staticroutes", "rtrmgr",
})

#: multi-process composition harnesses, exempt by design
HARNESS_PACKAGES = frozenset({"experiments", "simnet"})


class IsolationChecker(Checker):
    name = "isolation"
    rules = ("ISO001", "ISO002")

    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        own = module.package
        if own in HARNESS_PACKAGES:
            return
        path = str(module.path)
        for node in ast.walk(module.tree):
            for target_pkg, line in _repro_imports(node):
                if target_pkg not in PROCESS_PACKAGES or target_pkg == own:
                    continue
                if own in PROCESS_PACKAGES:
                    yield Finding(
                        path, line, "ISO001",
                        f"process package {own!r} imports process package "
                        f"{target_pkg!r}; cross-process interaction must go "
                        "through repro.xrl / repro.interfaces")
                else:
                    yield Finding(
                        path, line, "ISO002",
                        f"shared package {own or module.logical[0]!r} imports "
                        f"process package {target_pkg!r}; shared code is "
                        "loaded into every process and must stay "
                        "process-agnostic")


def _repro_imports(node: ast.AST) -> Iterator[tuple]:
    """Yield ``(top_package_under_repro, line)`` for import statements."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1], node.lineno
    elif isinstance(node, ast.ImportFrom):
        if node.module and node.level == 0:
            parts = node.module.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1], node.lineno
    elif (isinstance(node, ast.Call)
          and ((isinstance(node.func, ast.Attribute)
                and node.func.attr == "import_module")
               or (isinstance(node.func, ast.Name)
                   and node.func.id == "import_module"))
          and node.args
          and isinstance(node.args[0], ast.Constant)
          and isinstance(node.args[0].value, str)):
        parts = node.args[0].value.split(".")
        if parts[0] == "repro" and len(parts) > 1:
            yield parts[1], node.lineno
