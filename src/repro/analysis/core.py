"""Shared infrastructure for the architectural lint suite.

:class:`ModuleInfo` wraps one parsed source file with the metadata every
checker needs: its logical package path inside ``repro``, the AST, and
the per-line suppression table built from ``# repro: allow[RULE]``
comments.  :class:`Finding` is the structured result all checkers emit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Rule:
    """One enforced invariant: id, summary, and the paper section behind it."""

    id: str
    summary: str
    paper: str


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in [
        Rule("XRL001", "XRL names an interface/version absent from the IDL "
                       "catalogue", "§6.1"),
        Rule("XRL002", "XRL names a method the interface does not declare",
             "§6.1"),
        Rule("XRL003", "XRL argument names/types/arity disagree with the IDL "
                       "signature", "§6.1"),
        Rule("XRL004", "bind() target implements no handler for a declared "
                       "method", "§6.1"),
        Rule("XRL005", "handler signature cannot accept the declared "
                       "parameters", "§6.1"),
        Rule("XRL006", "textual XRL literal does not parse", "§6.1"),
        Rule("ISO001", "process package imports another process package's "
                       "internals", "§4"),
        Rule("ISO002", "shared library package imports a process package",
             "§4"),
        Rule("DET001", "wall-clock read outside eventloop//xrl.transport "
                       "breaks SimulatedClock reproducibility", "§4"),
        Rule("DET002", "blocking sleep stalls the single-threaded event loop",
             "§4"),
        Rule("DET003", "unseeded randomness breaks deterministic replay",
             "§4"),
        Rule("DET004", "blocking socket/select call outside the transport "
                       "layer", "§4"),
        Rule("DET005", "zero-delay timer sequences dependent work through "
                       "the timer queue; same-deadline firing order is not "
                       "guaranteed", "§4"),
        Rule("CB001", "deferred callback captures process state without a "
                      "liveness/generation guard", "§4"),
        Rule("STG001", "stage message passes or declares 'caller' "
                       "positionally; the API requires it keyword-only",
             "§5"),
        Rule("BKD001", "FEA code constructs a FIB backend class directly "
                       "instead of selecting it through make_backend()",
             "§3"),
        # Whole-system protocol graph rules (repro.analysis.protograph):
        # interprocedural, computed over every send and bind site at once.
        Rule("PRO001", "XRL sent to an interface/method no process ever "
                       "binds — unresolvable at runtime", "§6.1"),
        Rule("PRO002", "synchronous XRL request closes an inter-process "
                       "request cycle — a deadlock once each process is a "
                       "real OS subprocess", "§4"),
        Rule("PRO003", "caller reads a reply atom the handler's IDL reply "
                       "spec never produces", "§6.1"),
        Rule("PRO004", "handler bound but no process ever sends it that "
                       "XRL (dead protocol surface; warning)", "§6.1"),
        Rule("PRO005", "multiple versions of one interface are live "
                       "simultaneously (warning)", "§6.2"),
        Rule("PRO006", "declared reply atom that no caller anywhere reads "
                       "(info twin of PRO003)", "§6.1"),
        # Hot-path cost rules (repro.analysis.hotpath): interprocedural,
        # run only over the derived hot-path function set.
        Rule("HOT001", "singular call inside a loop where a batched API "
                       "exists (per-route add_route vs add_routes)", "§5"),
        Rule("HOT002", "per-item dict/list/XrlArgs construction inside a "
                       "per-route batch loop", "§6.1"),
        Rule("HOT003", "class instantiated on the hot path without "
                       "__slots__ (warning)", "§5"),
        Rule("HOT004", "attribute chain re-resolved >=2 deep inside a loop "
                       "body (warning)", "§5"),
        Rule("HOT005", "eagerly formatted string passed to logging/trace "
                       "emission on the hot path (warning)", "§8"),
        Rule("HOT006", "nested table/batch iteration inside per-route "
                       "processing (quadratic batch handling)", "§5"),
        # Runtime rules: emitted by repro.sanitizer, never by the static
        # checkers.  They live in the same catalogue so reports, formats
        # and suppressions share one namespace.
        Rule("SAN001", "add_route for a prefix already live on the same "
                       "stage edge without an intervening delete_route "
                       "(runtime, rule 1)", "§5"),
        Rule("SAN002", "delete_route without a previously propagated "
                       "add_route on the same stage edge (runtime, rule 1)",
             "§5"),
        Rule("SAN003", "replace_route for a prefix never added on the same "
                       "stage edge (runtime, rule 1)", "§5"),
        Rule("SAN004", "lookup_route answer contradicts the add/delete "
                       "stream previously sent downstream (runtime, rule 2)",
             "§5"),
        Rule("SAN101", "dispatched XRL names an interface/version absent "
                       "from the IDL catalogue (runtime)", "§6.1"),
        Rule("SAN102", "dispatched XRL names a method its interface does "
                       "not declare (runtime)", "§6.1"),
        Rule("SAN103", "dispatched XRL arguments disagree with the IDL "
                       "signature (runtime)", "§6.1"),
        Rule("RACE001", "final state diverges across legal schedules of "
                        "same-deadline events (ordering bug)", "§4"),
        # Observability rules: emitted by ``python -m repro.obs`` when the
        # traced scenario's reconstructed evidence contradicts the
        # architecture (runtime, like the SAN rules).
        Rule("OBS001", "traced route never reached the FEA FIB "
                       "(runtime observability)", "§8"),
        Rule("OBS002", "expected metric missing or zero during a traced "
                       "scrape (runtime observability)", "§8"),
        Rule("OBS003", "span timestamps decrease along a causal path "
                       "(runtime observability)", "§8"),
        Rule("SUP001", "suppression names an unknown rule id", "tooling"),
        Rule("SUP002", "suppression comment suppresses nothing on this "
                       "tree (rotted allow[])", "tooling"),
        Rule("GEN001", "file does not parse as Python", "tooling"),
    ]
}


#: finding severities, most serious first.  Only ``error`` findings fail
#: the CLI gate; ``warning``/``info`` surface in reports and annotations.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One structured lint result: where, which rule, and why."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}: {self.rule}{tag} {self.message}"


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class AllowComment:
    """One ``# repro: allow[...]`` comment and the lines it covers."""

    line: int
    rules: Tuple[str, ...]
    covers: Tuple[int, ...]


def scan_allow_comments(source: str) -> List["AllowComment"]:
    """Every ``# repro: allow[RULE,...]`` comment token in *source*.

    Only real comment tokens count (the syntax being *mentioned* in a
    docstring must not suppress anything).  A trailing comment covers its
    own line; a line holding only the comment also covers the next line,
    so multi-line statements can be annotated above rather than squeezed
    past column 79.
    """
    import io
    import tokenize

    comments: List[AllowComment] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if not match:
            continue
        rules = tuple(sorted({part.strip()
                              for part in match.group(1).split(",")
                              if part.strip()}))
        lineno = token.start[0]
        covers = [lineno]
        if token.line[:token.start[1]].strip() == "":
            covers.append(lineno + 1)
        comments.append(AllowComment(line=lineno, rules=rules,
                                     covers=tuple(covers)))
    return comments


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line rule suppressions, built from :func:`scan_allow_comments`."""
    table: Dict[int, Set[str]] = {}
    for comment in scan_allow_comments(source):
        for lineno in comment.covers:
            table.setdefault(lineno, set()).update(comment.rules)
    return table


@dataclass
class ModuleInfo:
    """One source file prepared for checking."""

    path: Path
    #: dotted location inside the repro package, e.g. ("bgp", "process");
    #: ("analysis", "core") for this file.  Element 0 names the package a
    #: module belongs to for isolation/determinism scoping.
    logical: Tuple[str, ...]
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    allow_comments: List[AllowComment] = field(default_factory=list)

    @property
    def package(self) -> str:
        return self.logical[0] if len(self.logical) > 1 else ""

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, ())

    @classmethod
    def from_source(cls, source: str, path: Path,
                    logical: Optional[Tuple[str, ...]] = None) -> "ModuleInfo":
        if logical is None:
            logical = logical_parts(path)
        tree = ast.parse(source, filename=str(path))
        comments = scan_allow_comments(source)
        table: Dict[int, Set[str]] = {}
        for comment in comments:
            for lineno in comment.covers:
                table.setdefault(lineno, set()).update(comment.rules)
        return cls(path=path, logical=logical, source=source, tree=tree,
                   suppressions=table, allow_comments=comments)


def logical_parts(path: Path) -> Tuple[str, ...]:
    """Best-effort logical location: the path parts below a ``repro`` dir."""
    parts = [p for p in path.parts]
    stem = list(parts[:-1]) + [Path(parts[-1]).stem]
    for index in range(len(stem) - 1, -1, -1):
        if stem[index] == "repro":
            return tuple(stem[index + 1:])
    return (stem[-1],)


class Checker:
    """Base class: one architectural invariant family."""

    name = "checker"
    rules: Sequence[str] = ()

    def check(self, module: ModuleInfo, project: "ProjectIndex"
              ) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectChecker:
    """A whole-project pass: sees every module at once.

    Per-module :class:`Checker`\\ s stay O(file); anything interprocedural
    (the protocol graph) implements this interface instead and is run by
    the runner after per-module checks, over the same parsed modules.
    """

    name = "project-checker"
    rules: Sequence[str] = ()

    def check_project(self, modules: Sequence[ModuleInfo],
                      project: "ProjectIndex") -> Iterable[Finding]:
        raise NotImplementedError


class ProjectIndex:
    """Cross-module lookups the checkers share.

    Today that is a class index (simple name -> definitions) used to
    resolve handler classes and base classes when checking ``bind()``
    registrations and callback guards across files.
    """

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.classes: Dict[str, List[Tuple[ModuleInfo, ast.ClassDef]]] = {}
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append((module, node))

    def class_def(self, name: str) -> Optional[ast.ClassDef]:
        entries = self.classes.get(name)
        return entries[0][1] if entries else None

    def find_method(self, cls: ast.ClassDef, *names: str,
                    _seen: Optional[Set[str]] = None
                    ) -> Tuple[Optional[ast.FunctionDef], bool]:
        """Look up the first of *names* on *cls* or its resolvable bases.

        Returns ``(function, complete)``; *complete* is False when some
        base class could not be resolved in the project, so a miss is not
        proof of absence.
        """
        seen = _seen if _seen is not None else set()
        if cls.name in seen:
            return None, True
        seen.add(cls.name)
        # Mirror XrlInterface.bind's preference order: the first of *names*
        # wins (``xrl_m`` before the bare ``m`` fallback), not body order.
        defined = {
            node.name: node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name in names:
            if name in defined:
                return defined[name], True
        complete = True
        for base in cls.bases:
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None)
            if base_name is None or base_name == "object":
                continue
            base_def = self.class_def(base_name)
            if base_def is None:
                complete = False
                continue
            found, sub_complete = self.find_method(base_def, *names, _seen=seen)
            if found is not None:
                return found, True
            complete = complete and sub_complete
        return None, complete


def resolve_str_values(node: Optional[ast.AST],
                       fn: Optional[ast.AST],
                       before_line: int) -> List[Tuple[str, int]]:
    """Statically resolve *node* to its possible string constants.

    Handles constants, ``"a" if c else "b"`` conditionals, and simple
    names assigned a resolvable value earlier in the enclosing function
    (closest assignment before *before_line* wins).  Returns
    ``(value, line-of-the-constant)`` pairs; empty when unresolvable.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node.lineno)]
    if isinstance(node, ast.IfExp):
        return (resolve_str_values(node.body, fn, before_line)
                + resolve_str_values(node.orelse, fn, before_line))
    if isinstance(node, ast.Name) and fn is not None:
        assign = closest_assignment(fn, node.id, before_line)
        if assign is not None:
            return resolve_str_values(assign.value, fn, assign.lineno)
    return []


def closest_assignment(fn: ast.AST, name: str,
                       before_line: int) -> Optional[ast.Assign]:
    """The latest ``name = ...`` in *fn* strictly before *before_line*."""
    best: Optional[ast.Assign] = None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or node.lineno >= before_line:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                if best is None or node.lineno > best.lineno:
                    best = node
    return best


def walk_with_scopes(tree: ast.Module):
    """Yield every (node, ancestry) pair; ancestry is outermost-first."""
    stack: List[ast.AST] = []

    def visit(node: ast.AST):
        yield node, list(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)


def enclosing_function(ancestry: Sequence[ast.AST]) -> Optional[ast.AST]:
    for node in reversed(ancestry):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return node
    return None


def enclosing_class(ancestry: Sequence[ast.AST]) -> Optional[ast.ClassDef]:
    for node in reversed(ancestry):
        if isinstance(node, ast.ClassDef):
            return node
    return None
