"""XRL conformance: every call site and handler against the IDL catalogue.

This is the static half of what XORP's ``xrlc`` did at build time
(paper §6.1: "interface specification, automatic stub code generation,
and basic error checking").  The runtime already rejects bad calls when
they happen; this checker rejects them when they are *written*:

* ``Xrl(target, "iface", "ver", "method", args)`` constructions —
  interface/version existence (XRL001), method existence (XRL002), and,
  when the ``XrlArgs`` build chain is statically resolvable, argument
  names/types/arity (XRL003);
* ``SOME_IDL.client(...)`` stubs and the proxy method calls made on them
  (XRL002/XRL003 with keyword arguments);
* ``register_raw_method("iface/ver/method", ...)`` paths (XRL001/XRL002);
* textual ``call_xrl``/``Xrl.from_text`` literals (XRL006 + the above);
* ``bind(SOME_IDL, impl)`` registrations — the implementation class must
  provide a handler for every declared method (XRL004) with a signature
  that can accept the declared parameters (XRL005).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectIndex,
    closest_assignment,
    enclosing_class as _enclosing_class,
    enclosing_function as _enclosing_function,
    resolve_str_values,
    walk_with_scopes as _walk_with_scopes,
)

#: XrlArgs builder method -> IDL type tag
_ADDER_TYPES = {
    "add_i32": "i32", "add_u32": "u32", "add_i64": "i64", "add_u64": "u64",
    "add_txt": "txt", "add_bool": "bool", "add_ipv4": "ipv4",
    "add_ipv6": "ipv6", "add_ipv4net": "ipv4net", "add_ipv6net": "ipv6net",
    "add_mac": "mac", "add_binary": "binary", "add_list": "list",
}

_IDL_NAME_SUFFIX = "_IDL"


def _is_idl_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id.endswith(_IDL_NAME_SUFFIX):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.endswith(_IDL_NAME_SUFFIX):
        return node.attr
    return None


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _ArgChain:
    """A statically resolved ``XrlArgs()...`` build chain."""

    __slots__ = ("atoms",)

    def __init__(self, atoms: List[Tuple[str, str]]):
        self.atoms = atoms  # [(name, idl type tag), ...]

    def describe(self) -> str:
        return "&".join(f"{n}:{t}" for n, t in self.atoms) or "<none>"


def _parse_arg_chain(node: ast.AST) -> Optional[_ArgChain]:
    """``XrlArgs().add_txt("a", x).add_u32("b", y)`` -> atom list, else None."""
    adders: List[Tuple[str, str]] = []
    current = node
    while True:
        if isinstance(current, ast.Call) and isinstance(current.func, ast.Name) \
                and current.func.id == "XrlArgs":
            if current.args or current.keywords:
                return None
            adders.reverse()
            return _ArgChain(adders)
        if not (isinstance(current, ast.Call)
                and isinstance(current.func, ast.Attribute)):
            return None
        attr = current.func.attr
        if attr in _ADDER_TYPES:
            name = _const_str(current.args[0]) if current.args else None
            if name is None:
                return None
            adders.append((name, _ADDER_TYPES[attr]))
        elif attr == "add":
            atom = _parse_xrl_atom(current.args[0]) if current.args else None
            if atom is None:
                return None
            adders.append(atom)
        else:
            return None
        current = current.func.value


def _parse_xrl_atom(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``XrlAtom("name", XrlAtomType.U32, v)`` -> ("name", "u32")."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "XrlAtom" and len(node.args) >= 2):
        return None
    name = _const_str(node.args[0])
    type_node = node.args[1]
    if name is None or not isinstance(type_node, ast.Attribute):
        return None
    try:
        from repro.xrl.types import XrlAtomType
        return name, XrlAtomType[type_node.attr].value
    except KeyError:
        return None


def _name_is_mutated(fn: ast.AST, name: str, assign_line: int) -> bool:
    """True when ``name.add*`` is called outside its build chain."""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("add")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.lineno != assign_line):
            return True
    return False


class XrlConformanceChecker(Checker):
    name = "xrl-conformance"
    rules = ("XRL001", "XRL002", "XRL003", "XRL004", "XRL005", "XRL006")

    def __init__(self, catalogue: Optional[Dict[str, object]] = None,
                 idl_constants: Optional[Dict[str, object]] = None):
        if catalogue is None or idl_constants is None:
            loaded_cat, loaded_consts = load_catalogue()
            catalogue = catalogue or loaded_cat
            idl_constants = idl_constants or loaded_consts
        self.catalogue = catalogue
        self.idl_constants = idl_constants

    # -- entry point -------------------------------------------------------
    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        path = str(module.path)
        for node, ancestry in _walk_with_scopes(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _enclosing_function(ancestry)
            cls = _enclosing_class(ancestry)
            yield from self._check_xrl_ctor(path, node, fn)
            yield from self._check_bind(path, node, fn, cls, project, module)
            yield from self._check_raw_register(path, node)
            yield from self._check_textual(path, node)
            yield from self._check_stub_call(path, node, fn, cls, project)

    # -- Xrl(...) constructions -------------------------------------------
    def _check_xrl_ctor(self, path: str, call: ast.Call,
                        fn: Optional[ast.AST]) -> Iterator[Finding]:
        if not (isinstance(call.func, ast.Name) and call.func.id == "Xrl"
                and len(call.args) >= 4):
            return
        iface_name = _const_str(call.args[1])
        version = _const_str(call.args[2])
        if iface_name is None or version is None:
            return
        fullname = f"{iface_name}/{version}"
        iface = self.catalogue.get(fullname)
        if iface is None:
            yield Finding(path, call.args[1].lineno, "XRL001",
                          f"unknown interface {fullname!r}")
            return
        methods = resolve_str_values(call.args[3], fn, call.lineno)
        known: List[str] = []
        for method_name, line in methods:
            if method_name not in iface.methods:
                yield Finding(path, line, "XRL002",
                              f"{fullname} declares no method {method_name!r}")
            else:
                known.append(method_name)
        if not known or len(known) != len(methods):
            return
        args_node = call.args[4] if len(call.args) >= 5 else None
        for keyword in call.keywords:
            if keyword.arg == "args":
                args_node = keyword.value
        chain = self._resolve_chain(args_node, fn, call.lineno)
        if chain is None:
            return
        got = set(chain.atoms)
        matches_any = any(
            got == set(iface.methods[m].signature[0])
            for m in known
        )
        if not matches_any:
            want = " | ".join(
                "&".join(f"{n}:{t}" for n, t in iface.methods[m].signature[0])
                or "<none>" for m in known
            )
            line = args_node.lineno if args_node is not None else call.lineno
            yield Finding(
                path, line, "XRL003",
                f"arguments {chain.describe()} do not match "
                f"{fullname}/{'|'.join(known)} ({want})")

    def _resolve_chain(self, node: Optional[ast.AST], fn: Optional[ast.AST],
                       before_line: int) -> Optional[_ArgChain]:
        if node is None:
            return _ArgChain([])
        chain = _parse_arg_chain(node)
        if chain is not None:
            return chain
        if isinstance(node, ast.Name) and fn is not None:
            assign = closest_assignment(fn, node.id, before_line)
            if assign is None:
                return None
            chain = _parse_arg_chain(assign.value)
            if chain is None:
                return None
            if _name_is_mutated(fn, node.id, assign.lineno):
                return None
            return chain
        return None

    # -- bind(...) registrations ------------------------------------------
    def _check_bind(self, path: str, call: ast.Call, fn: Optional[ast.AST],
                    cls: Optional[ast.ClassDef], project: ProjectIndex,
                    module: ModuleInfo) -> Iterator[Finding]:
        bind_attr = resolve_bind_attr(call, fn)
        if bind_attr is None:
            return
        iface_node: Optional[ast.AST] = None
        iface_index = -1
        receiver_name = _is_idl_name(bind_attr.value)
        if receiver_name is not None:
            iface_node = bind_attr.value
        else:
            for index, arg in enumerate(call.args):
                if _is_idl_name(arg) is not None or _is_interface_call(arg):
                    iface_node = arg
                    iface_index = index
                    break
        if iface_node is None:
            return
        iface = self._resolve_idl_node(iface_node)
        if iface is None:
            yield Finding(
                path, iface_node.lineno, "XRL001",
                f"interface constant "
                f"{_is_idl_name(iface_node) or ast.dump(iface_node)[:40]!r} "
                f"is not in the repro.interfaces catalogue")
            return
        impl_node: Optional[ast.AST] = None
        if receiver_name is not None:
            impl_node = call.args[1] if len(call.args) > 1 else None
        elif iface_index + 1 < len(call.args):
            impl_node = call.args[iface_index + 1]
        impl_cls = self._resolve_impl_class(impl_node, fn, cls, project,
                                            call.lineno)
        if impl_cls is None:
            return
        for method in iface.methods.values():
            handler, complete = project.find_method(
                impl_cls, f"xrl_{method.name}", method.name)
            if handler is None:
                if complete:
                    yield Finding(
                        path, call.lineno, "XRL004",
                        f"{impl_cls.name} implements no handler for "
                        f"{iface.fullname}/{method.name}")
                continue
            problem = _handler_signature_problem(handler, method)
            if problem is not None:
                yield Finding(
                    path, call.lineno, "XRL005",
                    f"{impl_cls.name}.{handler.name} cannot accept "
                    f"{iface.fullname}/{method.name}: {problem}")

    def _resolve_idl_node(self, node: ast.AST):
        name = _is_idl_name(node)
        if name is not None:
            return self.idl_constants.get(name)
        if _is_interface_call(node):
            fullname = _const_str(node.args[0]) if node.args else None
            if fullname is not None:
                return self.catalogue.get(fullname)
        return None

    def _resolve_impl_class(self, node: Optional[ast.AST],
                            fn: Optional[ast.AST],
                            cls: Optional[ast.ClassDef],
                            project: ProjectIndex,
                            before_line: int) -> Optional[ast.ClassDef]:
        if node is None or (isinstance(node, ast.Constant)
                            and node.value is None):
            return cls
        if isinstance(node, ast.Name):
            if node.id == "self":
                return cls
            if fn is not None:
                assign = closest_assignment(fn, node.id, before_line)
                if assign is not None and isinstance(assign.value, ast.Call) \
                        and isinstance(assign.value.func, ast.Name):
                    return project.class_def(assign.value.func.id)
            return None
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and cls is not None:
            for stmt in ast.walk(cls):
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                and t.attr == node.attr
                                for t in stmt.targets)
                        and isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Name)):
                    return project.class_def(stmt.value.func.id)
        return None

    # -- raw registrations -------------------------------------------------
    def _check_raw_register(self, path: str, call: ast.Call
                            ) -> Iterator[Finding]:
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "register_raw_method" and call.args):
            return
        method_path = _const_str(call.args[0])
        if method_path is None:
            return
        parts = method_path.split("/")
        if len(parts) != 3:
            yield Finding(path, call.args[0].lineno, "XRL006",
                          f"malformed method path {method_path!r} "
                          "(want interface/version/method)")
            return
        fullname = f"{parts[0]}/{parts[1]}"
        iface = self.catalogue.get(fullname)
        if iface is None:
            yield Finding(path, call.args[0].lineno, "XRL001",
                          f"unknown interface {fullname!r}")
        elif parts[2] not in iface.methods:
            yield Finding(path, call.args[0].lineno, "XRL002",
                          f"{fullname} declares no method {parts[2]!r}")

    # -- textual XRLs ------------------------------------------------------
    def _check_textual(self, path: str, call: ast.Call) -> Iterator[Finding]:
        is_call_xrl = (
            (isinstance(call.func, ast.Name)
             and call.func.id in ("call_xrl", "call_xrl_checked"))
            or (isinstance(call.func, ast.Attribute)
                and call.func.attr in ("call_xrl", "call_xrl_checked")))
        is_from_text = (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "from_text"
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == "Xrl")
        if not (is_call_xrl or is_from_text):
            return
        text_node = call.args[1] if is_call_xrl and len(call.args) > 1 else (
            call.args[0] if is_from_text and call.args else None)
        text = _const_str(text_node)
        if text is None:
            return
        from repro.xrl.error import XrlError
        from repro.xrl.xrl import Xrl
        try:
            xrl = Xrl.from_text(text)
        except XrlError as exc:
            yield Finding(path, text_node.lineno, "XRL006",
                          f"bad XRL literal: {exc}")
            return
        fullname = f"{xrl.interface}/{xrl.version}"
        iface = self.catalogue.get(fullname)
        if iface is None:
            yield Finding(path, text_node.lineno, "XRL001",
                          f"unknown interface {fullname!r}")
            return
        if xrl.method not in iface.methods:
            yield Finding(path, text_node.lineno, "XRL002",
                          f"{fullname} declares no method {xrl.method!r}")
            return
        got = {(atom.name, atom.type.value) for atom in xrl.args}
        want = set(iface.methods[xrl.method].signature[0])
        if got != want:
            yield Finding(
                path, text_node.lineno, "XRL003",
                f"arguments {sorted(got)} do not match "
                f"{fullname}/{xrl.method} signature {sorted(want)}")

    # -- client stubs ------------------------------------------------------
    def _check_stub_call(self, path: str, call: ast.Call,
                         fn: Optional[ast.AST], cls: Optional[ast.ClassDef],
                         project: ProjectIndex) -> Iterator[Finding]:
        """``stub = X_IDL.client(...); stub.method(cb, name=...)`` checks."""
        if not isinstance(call.func, ast.Attribute):
            return
        receiver = call.func.value
        iface = None
        if isinstance(receiver, ast.Name) and fn is not None:
            assign = closest_assignment(fn, receiver.id, call.lineno)
            if assign is not None:
                iface = self._client_interface(assign.value)
        elif isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id == "self" and cls is not None:
            for stmt in ast.walk(cls):
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                and t.attr == receiver.attr
                                for t in stmt.targets)):
                    iface = self._client_interface(stmt.value)
                    if iface is not None:
                        break
        if iface is None:
            return
        method_name = call.func.attr
        if method_name not in iface.methods:
            yield Finding(path, call.lineno, "XRL002",
                          f"{iface.fullname} declares no method "
                          f"{method_name!r}")
            return
        if not call.keywords or any(k.arg is None for k in call.keywords):
            return
        got = {k.arg for k in call.keywords}
        want = {n for n, _t in iface.methods[method_name].signature[0]}
        if got != want:
            yield Finding(
                path, call.lineno, "XRL003",
                f"stub call keywords {sorted(got)} do not match "
                f"{iface.fullname}/{method_name} parameters {sorted(want)}")

    def _client_interface(self, node: ast.AST):
        """``X_IDL.client(router, target)`` -> the interface, else None."""
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "client"):
            return self._resolve_idl_node(node.func.value)
        return None


def _is_interface_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "interface")


def resolve_bind_attr(call: ast.Call,
                      fn: Optional[ast.AST]) -> Optional[ast.Attribute]:
    """The ``<router>.bind`` attribute a call registers through, else None.

    Covers the direct form (``router.bind(...)``, ``IDL.bind(router, ...)``,
    helper wrappers like ``XorpProcess.bind``) and one level of local
    aliasing — ``register = router.bind; register(IDL, self)`` — so the
    bind inventory stays complete when code names the bound method first.
    """
    if isinstance(call.func, ast.Attribute) and call.func.attr == "bind":
        return call.func
    if isinstance(call.func, ast.Name) and fn is not None:
        assign = closest_assignment(fn, call.func.id, call.lineno)
        if assign is not None and isinstance(assign.value, ast.Attribute) \
                and assign.value.attr == "bind":
            return assign.value
    return None


def _handler_signature_problem(handler: ast.FunctionDef,
                               method) -> Optional[str]:
    """Why *handler* cannot be called with the method's kwargs, or None."""
    arg_spec = handler.args
    if arg_spec.kwarg is not None:
        return None
    names = [a.arg for a in arg_spec.args + arg_spec.kwonlyargs
             if a.arg != "self"]
    wanted = [n for n, _t in method.signature[0]]
    missing = [n for n in wanted if n not in names]
    if missing:
        return f"missing parameters {missing}"
    defaults_count = len(arg_spec.defaults)
    positional = [a.arg for a in arg_spec.args if a.arg != "self"]
    required = positional[:len(positional) - defaults_count] \
        if defaults_count else positional
    required_kwonly = [
        a.arg for a, d in zip(arg_spec.kwonlyargs, arg_spec.kw_defaults)
        if d is None
    ]
    extra = [n for n in required + required_kwonly if n not in wanted]
    if extra:
        return f"requires undeclared parameters {extra}"
    return None


def load_catalogue() -> Tuple[Dict[str, object], Dict[str, object]]:
    """The IDL catalogue plus the ``*_IDL`` constant-name map."""
    import repro.interfaces as interfaces
    from repro.xrl.idl import XrlInterface

    constants = {
        name: value for name, value in vars(interfaces).items()
        if name.endswith(_IDL_NAME_SUFFIX) and isinstance(value, XrlInterface)
    }
    return interfaces.catalogue(), constants
