"""Event-loop hygiene: no wall clocks, sleeps, entropy, or blocking I/O.

The whole stack runs on one cooperative event loop whose notion of time
comes from a :class:`~repro.eventloop.clock.Clock` (paper §4: a
single-threaded process "must never block").  The deterministic
chaos/recovery tests additionally pin every source of randomness to a
seed so failures replay exactly.  Both properties die quietly the moment
someone writes ``time.time()`` or ``random.random()`` in protocol code,
so this checker bans them outside the two places that legitimately touch
the real world: ``eventloop/`` (the clock + poller) and
``xrl/transport/`` (real sockets).

Rules: DET001 wall-clock reads, DET002 blocking sleeps, DET003 unseeded
randomness, DET004 blocking socket/select calls, DET005 zero-delay
timers.  The detection is name-based (``time.sleep`` spelled via an
alias escapes) — this is a lint for honest code, not a sandbox.

DET005 exists for the schedule explorer in ``repro.sanitizer``:
``call_later(0, ...)`` parks work in the timer queue at the *current*
deadline, so whether it runs before or after a sibling same-deadline
timer is an accident of heap insertion order.  Code that needs
"next iteration" ordering should say ``call_soon`` (FIFO within a
batch is still not guaranteed under exploration, but intent is
explicit); code that needs real delay should use a nonzero one.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.core import Checker, Finding, ModuleInfo, ProjectIndex

#: logical path prefixes allowed to touch real time / sockets / entropy
ALLOWED_PREFIXES: Tuple[Tuple[str, ...], ...] = (
    ("eventloop",),
    ("xrl", "transport"),
)

_WALL_CLOCK = {
    "time": {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
             "perf_counter_ns", "localtime", "gmtime", "ctime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}
_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "betavariate", "expovariate", "gauss", "normalvariate",
    "random_bytes", "getrandbits",
}
_BLOCKING_SOCKET = {
    "socket": {"socket", "create_connection", "create_server", "socketpair",
               "getaddrinfo", "gethostbyname"},
    "select": {"select", "poll", "epoll", "kqueue"},
    "selectors": {"DefaultSelector", "SelectSelector", "PollSelector",
                  "EpollSelector", "KqueueSelector"},
}


#: timer-scheduling entry points whose first argument is a delay
_DELAY_SCHEDULERS = {"call_later", "schedule_after"}


class DeterminismChecker(Checker):
    name = "determinism"
    rules = ("DET001", "DET002", "DET003", "DET004", "DET005")

    def check(self, module: ModuleInfo, project: ProjectIndex
              ) -> Iterator[Finding]:
        if any(module.logical[:len(prefix)] == prefix
               for prefix in ALLOWED_PREFIXES):
            return
        path = str(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_call(node)
            if dotted is None:
                continue
            base, attr = dotted
            if base == "time" and attr == "sleep":
                yield Finding(
                    path, node.lineno, "DET002",
                    "time.sleep() blocks the event loop; schedule a timer "
                    "on loop.call_later instead")
            elif attr in _WALL_CLOCK.get(base, ()):
                yield Finding(
                    path, node.lineno, "DET001",
                    f"{base}.{attr}() reads the wall clock; use the event "
                    "loop's clock so SimulatedClock runs stay reproducible")
            elif base == "random" and attr in _RANDOM_FUNCS:
                yield Finding(
                    path, node.lineno, "DET003",
                    f"module-level random.{attr}() is unseeded; use a "
                    "random.Random(seed) instance plumbed from the scenario")
            elif base == "random" and attr == "SystemRandom":
                yield Finding(
                    path, node.lineno, "DET003",
                    "random.SystemRandom is entropy-backed and can never "
                    "replay deterministically")
            elif base == "random" and attr == "Random" and not node.args \
                    and not node.keywords:
                yield Finding(
                    path, node.lineno, "DET003",
                    "random.Random() without a seed breaks deterministic "
                    "replay; pass an explicit seed")
            elif attr in _BLOCKING_SOCKET.get(base, ()):
                yield Finding(
                    path, node.lineno, "DET004",
                    f"{base}.{attr}() is blocking I/O; only "
                    "eventloop//xrl.transport may touch sockets")
            elif (attr in _DELAY_SCHEDULERS and node.args
                  and isinstance(node.args[0], ast.Constant)
                  and isinstance(node.args[0].value, (int, float))
                  and not isinstance(node.args[0].value, bool)
                  and node.args[0].value == 0):
                yield Finding(
                    path, node.lineno, "DET005",
                    f"{attr}(0, ...) relies on same-deadline timer order, "
                    "which the schedule explorer deliberately permutes; use "
                    "call_soon for next-iteration intent or a real delay")


def _dotted_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``base.attr(...)`` with a plain-name or dotted base, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id, func.attr
    # datetime.datetime.now() / socket.socket(...) style double dotting
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        return value.attr, func.attr
    return None
