"""Experiment harnesses reproducing the paper's evaluation (§8).

One module per experiment family:

* :mod:`repro.experiments.xrlperf`   — Figure 9: XRL throughput vs
  argument count for the Intra-Process, TCP and UDP protocol families;
* :mod:`repro.experiments.latency`   — Figures 10-12: route propagation
  latency through the eight profiling points, with and without a full
  BGP backbone feed;
* :mod:`repro.experiments.routeflow` — Figure 13: per-route propagation
  delay through a router under test (XORP stack vs. event-driven and
  30-second-scanner baselines);
* :mod:`repro.experiments.batchflow` — batch-size sweeps of the two hot
  paths (Fig. 9 coalesced XRLs, Fig. 13 vectorized route flow) and the
  ``BENCH_fig09.json`` / ``BENCH_fig13.json`` perf trajectory;
* :mod:`repro.experiments.synth`     — synthetic backbone feed generator
  (the stand-in for the paper's 146,515-route Internet feed);
* :mod:`repro.experiments.recovery`  — supervised crash recovery: kill
  BGP mid-session under seeded frame loss, measure time-to-reconverge;
* :mod:`repro.experiments.resilience` — dataplane-backend resilience:
  blackhole time across a backend crash/reattach, and the watermark
  bound on a full-table flush into a slow backend.
"""

from repro.experiments.batchflow import (
    BATCH_SIZES,
    record_trajectory,
    run_route_batch_sweep,
    run_xrl_batch_sweep,
)
from repro.experiments.synth import synthetic_feed
from repro.experiments.xrlperf import XrlPerfResult, run_xrl_throughput
from repro.experiments.latency import LatencyResult, run_latency_experiment
from repro.experiments.recovery import RecoveryResult, run_recovery
from repro.experiments.resilience import (
    ResilienceResult,
    ThrottledFlushResult,
    run_backend_resilience,
    run_throttled_flush,
)
from repro.experiments.routeflow import RouteFlowResult, run_route_flow

__all__ = [
    "BATCH_SIZES",
    "LatencyResult",
    "RecoveryResult",
    "ResilienceResult",
    "RouteFlowResult",
    "ThrottledFlushResult",
    "XrlPerfResult",
    "record_trajectory",
    "run_backend_resilience",
    "run_latency_experiment",
    "run_recovery",
    "run_throttled_flush",
    "run_route_batch_sweep",
    "run_route_flow",
    "run_xrl_batch_sweep",
    "run_xrl_throughput",
    "synthetic_feed",
]
