"""Synthetic BGP backbone feed.

The paper preloads "a full Internet backbone routing feed consisting of
146,515 routes".  We cannot ship a 2004 RouteViews dump, so this generates
a feed with the properties that matter to the experiments: unique
prefixes across the unicast space with a realistic prefix-length mix
(dominated by /24s, per RouteViews statistics of the era), plausible AS
paths, and a shared-attribute grouping similar to real tables.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.net import IPNet, IPv4

#: fraction of the table per prefix length (approximate 2004 DFZ mix)
PREFIX_LENGTH_MIX = [
    (8, 0.001), (12, 0.004), (14, 0.01), (16, 0.06), (17, 0.025),
    (18, 0.04), (19, 0.07), (20, 0.07), (21, 0.06), (22, 0.10),
    (23, 0.10), (24, 0.46),
]

PAPER_FEED_SIZE = 146515


def synthetic_prefixes(count: int, seed: int = 2004) -> List[IPNet]:
    """*count* unique prefixes with a realistic length distribution."""
    rng = random.Random(seed)
    lengths: List[int] = []
    for length, fraction in PREFIX_LENGTH_MIX:
        lengths.extend([length] * max(1, int(round(fraction * count))))
    while len(lengths) < count:
        lengths.append(24)
    rng.shuffle(lengths)
    lengths = lengths[:count]
    seen = set()
    prefixes: List[IPNet] = []
    for length in lengths:
        while True:
            # Unicast space, avoiding 10/8 (experiment peering/nexthops)
            # and 192/2 upper ranges (test prefixes live in 198.18/15).
            value = rng.randrange(0x0B000000, 0xC0000000)
            net = IPNet(IPv4(value), length)
            if net.key() not in seen:
                seen.add(net.key())
                prefixes.append(net)
                break
    return prefixes


def synthetic_feed(count: int = PAPER_FEED_SIZE, *, seed: int = 2004,
                   nexthop: str = "10.0.0.2",
                   neighbor_as: int = 65002,
                   group_size: int = 200,
                   ) -> Iterator[Tuple[PathAttributeList, List[IPNet]]]:
    """Yield ``(attributes, [prefixes])`` groups forming the feed.

    Groups share an attribute list, as routes from one origin AS do in a
    real table; *group_size* bounds prefixes per UPDATE message.
    """
    rng = random.Random(seed + 1)
    prefixes = synthetic_prefixes(count, seed)
    nexthop_addr = IPv4(nexthop)
    index = 0
    while index < len(prefixes):
        path_len = rng.choice((1, 2, 2, 3, 3, 3, 4, 4, 5, 6))
        as_numbers = [neighbor_as]
        for __ in range(path_len - 1):
            as_numbers.append(rng.randrange(1, 64000))
        attributes = PathAttributeList(
            origin=rng.choice((Origin.IGP, Origin.IGP, Origin.INCOMPLETE)),
            as_path=ASPath.from_sequence(*as_numbers),
            nexthop=nexthop_addr,
            med=rng.choice((None, None, 0, 10, 100)),
        )
        take = min(rng.randrange(1, group_size + 1), len(prefixes) - index)
        yield attributes, prefixes[index : index + take]
        index += take
