"""Batch-size sweeps for the two hot paths, plus the perf trajectory.

ISSUE 4 makes batches the native unit of (1) the staged route tables and
(2) the XRL layer.  This module measures what that buys, sweeping batch
size over the values future PRs will regress against (1, 16, 256):

* :func:`run_xrl_batch_sweep` — the Figure 9 transaction re-run with the
  sender issuing coalesced groups (``XrlRouter.send(batch=True)``), per
  transport family;
* :func:`run_route_batch_sweep` — the Figure 13 hot path as a throughput
  measurement: routes injected at a RIB origin table, through the staged
  pipeline (ExtInt -> redist -> register -> FEA distributor) and over
  pipelined XRLs into the FEA's FIB, then withdrawn again.  Batch size 1
  uses the singular ``originate``/``withdraw`` entry points; larger sizes
  use ``originate_batch``/``withdraw_batch``, so the sweep contrasts the
  per-call API with the vectorized one end to end;
* :func:`record_trajectory` — append-or-update one entry of the
  ``BENCH_fig09.json`` / ``BENCH_fig13.json`` trajectory artifacts the
  benchmark CI job publishes.

Wall-clock reads below are the measurement itself, as in
:mod:`repro.experiments.xrlperf`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.process import Host
from repro.eventloop import EventLoop, SystemClock
from repro.experiments.xrlperf import run_xrl_throughput
from repro.net import IPNet, IPv4
from repro.rib.route import RibRoute

#: the canonical sweep: singular baseline, a peering-burst-sized batch,
#: and a full-table-resync-sized batch
BATCH_SIZES = (1, 16, 256)


def run_xrl_batch_sweep(batch_sizes: Sequence[int] = BATCH_SIZES, *,
                        transaction_size: int = 5000,
                        window: int = 512,
                        families: Optional[List[str]] = None,
                        arg_count: int = 0) -> Dict[str, Dict[int, float]]:
    """Figure 9 with coalescing: XRLs/sec per (family, batch size).

    The window is held constant across batch sizes (and sized above the
    largest batch) so the sweep isolates coalescing from pipelining
    depth: batch size 1 is the original fully pipelined singular sender.
    """
    if families is None:
        families = ["intra", "tcp"]
    rates: Dict[str, Dict[int, float]] = {family: {} for family in families}
    for size in batch_sizes:
        result = run_xrl_throughput(
            [arg_count], transaction_size=transaction_size,
            window=max(window, size), families=list(families),
            batch_size=size)
        for family in families:
            rates[family][size] = result.mean(family, arg_count)
    return rates


def _sweep_routes(count: int) -> List[RibRoute]:
    """Distinct /24s under 10.0.0.0/8 with a common resolvable nexthop."""
    routes = []
    for index in range(count):
        net = IPNet(IPv4(0x0A000000 + (index << 8)), 24)
        routes.append(RibRoute(net, IPv4("10.0.0.1"), 1, "static",
                               ifname="eth0"))
    return routes


def run_route_batch_sweep(batch_sizes: Sequence[int] = BATCH_SIZES, *,
                          route_count: int = 2048,
                          window: int = 512,
                          repetitions: int = 1) -> Dict[int, float]:
    """Routes/sec through origin -> staged pipeline -> XRLs -> FEA FIB.

    Each sweep point builds a fresh RIB + FEA pair, injects *route_count*
    routes in segments of the given batch size, waits for every route to
    land in the FEA's FIB (and every XRL reply to drain), then withdraws
    them all the same way.  The rate counts both directions: one "op" is
    one add or one delete observed end to end.  With *repetitions* > 1
    the best run per size is kept (noise on a shared machine only ever
    slows a run down).
    """
    rates: Dict[int, float] = {}
    for size in batch_sizes_guard(batch_sizes):
        best = 0.0
        for __ in range(max(1, repetitions)):
            best = max(best, _route_batch_run(size, route_count, window))
        rates[size] = best
    return rates


def _route_batch_run(size: int, route_count: int, window: int) -> float:
    """One sweep point: build the stack, push + withdraw, return ops/sec."""
    from repro.fea import FeaProcess
    from repro.rib import RibProcess

    loop = EventLoop(SystemClock())
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host, window=window)
    origin = rib.v4.origin("static")
    routes = _sweep_routes(route_count)

    # repro: allow[DET001] throughput benchmark: wall time IS the measurement
    start = time.perf_counter()
    if size <= 1:
        for route in routes:
            origin.originate(route)
    else:
        for index in range(0, route_count, size):
            origin.originate_batch(routes[index:index + size])
    if not loop.run_until(
            lambda: len(fea.fib4) >= route_count and rib.txq.idle,
            timeout=300.0):
        raise RuntimeError(
            f"batch {size}: only {len(fea.fib4)}/{route_count} routes "
            f"reached the FEA")
    if size <= 1:
        for route in routes:
            origin.withdraw(route.net)
    else:
        nets = [route.net for route in routes]
        for index in range(0, route_count, size):
            origin.withdraw_batch(nets[index:index + size])
    if not loop.run_until(lambda: len(fea.fib4) == 0 and rib.txq.idle,
                          timeout=300.0):
        raise RuntimeError(
            f"batch {size}: {len(fea.fib4)} routes still in the FEA "
            f"after withdrawal")
    elapsed = time.perf_counter() - start  # repro: allow[DET001] benchmark timing
    rib.shutdown()
    fea.shutdown()
    return 2 * route_count / elapsed


def batch_sizes_guard(batch_sizes: Sequence[int]) -> List[int]:
    sizes = [int(size) for size in batch_sizes]
    if any(size < 1 for size in sizes):
        raise ValueError(f"batch sizes must be >= 1, got {sizes}")
    return sizes


def record_trajectory(path, figure: str, unit: str,
                      entry: Dict) -> Dict:
    """Append-or-update one *entry* of a benchmark trajectory file.

    The file holds ``{"figure", "unit", "trajectory": [...]}``; entries
    are keyed by their ``"issue"`` field, so re-running a sweep for the
    same PR updates its entry in place instead of growing the list.
    Returns the full document as written.
    """
    path = Path(path)
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"figure": figure, "unit": unit, "trajectory": []}
    data["figure"] = figure
    data["unit"] = unit
    trajectory = data.setdefault("trajectory", [])
    for index, existing in enumerate(trajectory):
        if existing.get("issue") == entry.get("issue"):
            trajectory[index] = entry
            break
    else:
        trajectory.append(entry)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return data
