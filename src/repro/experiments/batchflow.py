"""Batch-size sweeps for the two hot paths, plus the perf trajectory.

ISSUE 4 makes batches the native unit of (1) the staged route tables and
(2) the XRL layer.  This module measures what that buys, sweeping batch
size over the values future PRs will regress against (1, 16, 256):

* :func:`run_xrl_batch_sweep` — the Figure 9 transaction re-run with the
  sender issuing coalesced groups (``XrlRouter.send(batch=True)``), per
  transport family;
* :func:`run_route_batch_sweep` — the Figure 13 hot path as a throughput
  measurement: routes injected at a RIB origin table, through the staged
  pipeline (ExtInt -> redist -> register -> FEA distributor) and over
  pipelined XRLs into the FEA's FIB, then withdrawn again.  Batch size 1
  uses the singular ``originate``/``withdraw`` entry points; larger sizes
  use ``originate_batch``/``withdraw_batch``, so the sweep contrasts the
  per-call API with the vectorized one end to end;
* :func:`record_trajectory` — append-or-update one entry of the
  ``BENCH_fig09.json`` / ``BENCH_fig13.json`` trajectory artifacts the
  benchmark CI job publishes.

Wall-clock reads below are the measurement itself, as in
:mod:`repro.experiments.xrlperf`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.process import Host
from repro.eventloop import EventLoop, SystemClock
from repro.experiments.xrlperf import run_xrl_throughput
from repro.net import IPNet, IPv4
from repro.rib.route import RibRoute

#: the canonical sweep: singular baseline, a peering-burst-sized batch,
#: and a full-table-resync-sized batch
BATCH_SIZES = (1, 16, 256)


def run_xrl_batch_sweep(batch_sizes: Sequence[int] = BATCH_SIZES, *,
                        transaction_size: int = 5000,
                        window: int = 512,
                        families: Optional[List[str]] = None,
                        arg_count: int = 0) -> Dict[str, Dict[int, float]]:
    """Figure 9 with coalescing: XRLs/sec per (family, batch size).

    The window is held constant across batch sizes (and sized above the
    largest batch) so the sweep isolates coalescing from pipelining
    depth: batch size 1 is the original fully pipelined singular sender.
    """
    if families is None:
        families = ["intra", "tcp"]
    rates: Dict[str, Dict[int, float]] = {family: {} for family in families}
    for size in batch_sizes:
        result = run_xrl_throughput(
            [arg_count], transaction_size=transaction_size,
            window=max(window, size), families=list(families),
            batch_size=size)
        for family in families:
            rates[family][size] = result.mean(family, arg_count)
    return rates


def run_codec_sweep(batch_sizes: Sequence[int] = BATCH_SIZES, *,
                    transaction_size: int = 5000,
                    window: int = 512,
                    arg_count: int = 10) -> Dict[str, Dict[int, float]]:
    """Figure 9, textual vs. negotiated binary frames over TCP.

    Same transaction and window discipline as the batch sweep, but the
    swept variable is the frame codec: ``tcp-textual`` pins the family to
    the canonical frames, ``tcp-binary`` negotiates the interned binary
    form.  The argument count is held at a typical routing-XRL size so
    the sweep exercises atom marshaling, not just the method token.
    """
    rates: Dict[str, Dict[int, float]] = {}
    for codec in ("textual", "binary"):
        table: Dict[int, float] = {}
        for size in batch_sizes:
            result = run_xrl_throughput(
                [arg_count], transaction_size=transaction_size,
                window=max(window, size), families=["tcp"],
                batch_size=size, codec=codec)
            table[size] = result.mean("tcp", arg_count)
        rates[f"tcp-{codec}"] = table
    return rates


def _sweep_routes(count: int) -> List[RibRoute]:
    """Distinct /24s under 10.0.0.0/8 with a common resolvable nexthop."""
    routes = []
    for index in range(count):
        net = IPNet(IPv4(0x0A000000 + (index << 8)), 24)
        routes.append(RibRoute(net, IPv4("10.0.0.1"), 1, "static",
                               ifname="eth0"))
    return routes


def run_route_batch_sweep(batch_sizes: Sequence[int] = BATCH_SIZES, *,
                          route_count: int = 2048,
                          window: int = 512,
                          repetitions: int = 1) -> Dict[int, float]:
    """Routes/sec through origin -> staged pipeline -> XRLs -> FEA FIB.

    Each sweep point builds a fresh RIB + FEA pair, injects *route_count*
    routes in segments of the given batch size, waits for every route to
    land in the FEA's FIB (and every XRL reply to drain), then withdraws
    them all the same way.  The rate counts both directions: one "op" is
    one add or one delete observed end to end.  With *repetitions* > 1
    the best run per size is kept (noise on a shared machine only ever
    slows a run down).
    """
    rates: Dict[int, float] = {}
    for size in batch_sizes_guard(batch_sizes):
        best = 0.0
        for __ in range(max(1, repetitions)):
            best = max(best, _route_batch_run(size, route_count, window))
        rates[size] = best
    return rates


def _route_batch_run(size: int, route_count: int, window: int) -> float:
    """One sweep point: build the stack, push + withdraw, return ops/sec."""
    from repro.fea import FeaProcess
    from repro.rib import RibProcess

    loop = EventLoop(SystemClock())
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host, window=window)
    origin = rib.v4.origin("static")
    routes = _sweep_routes(route_count)

    # repro: allow[DET001] throughput benchmark: wall time IS the measurement
    start = time.perf_counter()
    if size <= 1:
        for route in routes:
            origin.originate(route)
    else:
        for index in range(0, route_count, size):
            origin.originate_batch(routes[index:index + size])
    if not loop.run_until(
            lambda: len(fea.fib4) >= route_count and rib.txq.idle,
            timeout=300.0):
        raise RuntimeError(
            f"batch {size}: only {len(fea.fib4)}/{route_count} routes "
            f"reached the FEA")
    if size <= 1:
        for route in routes:
            origin.withdraw(route.net)
    else:
        nets = [route.net for route in routes]
        for index in range(0, route_count, size):
            origin.withdraw_batch(nets[index:index + size])
    if not loop.run_until(lambda: len(fea.fib4) == 0 and rib.txq.idle,
                          timeout=300.0):
        raise RuntimeError(
            f"batch {size}: {len(fea.fib4)} routes still in the FEA "
            f"after withdrawal")
    elapsed = time.perf_counter() - start  # repro: allow[DET001] benchmark timing
    rib.shutdown()
    fea.shutdown()
    return 2 * route_count / elapsed


def run_subprocess_route_point(route_count: int = 512, *,
                               window: int = 64) -> float:
    """Figure 13, deployment mode: routes/sec across real OS processes.

    The RIB and FEA run as genuine ``python -m repro.rib`` /
    ``python -m repro.fea`` subprocesses under a
    :class:`~repro.rtrmgr.spawn.SpawnManager`; the measurement pipelines
    *route_count* ``add_route4`` XRLs from the manager into the RIB
    child and waits until the last route is visible in the FEA child's
    FIB — so every route crosses two process boundaries over TCP with
    the negotiated codec.  One number, not a sweep: the point exists to
    compare deployment mode against the in-process trajectory above.
    """
    from repro.interfaces import FEA_FIB_IDL, RIB_IDL
    from repro.rtrmgr.spawn import SpawnManager
    from repro.xrl import Xrl

    manager = SpawnManager()
    try:
        manager.spawn_module("fea", args=["--ifaddr", "eth0=10.0.0.1/24"])
        manager.spawn_module("rib")
        manager.loop.run(duration=0.5)

        routes = _sweep_routes(route_count)
        completed = [0]
        sent = [0]

        def pump() -> None:
            while sent[0] < route_count and sent[0] - completed[0] < window:
                route = routes[sent[0]]
                sent[0] += 1
                args = RIB_IDL.method("add_route4").build_args({
                    "protocol": "static", "net": str(route.net),
                    "nexthop": str(route.nexthop), "metric": 1,
                    "policytags": []})
                manager.xrl.send(
                    Xrl("rib", "rib", "1.0", "add_route4", args), on_reply)

        def on_reply(error, response) -> None:
            if not error.is_okay:
                raise RuntimeError(f"add_route4 failed: {error}")
            completed[0] += 1
            pump()

        last = routes[-1]
        probe_args = FEA_FIB_IDL.method("lookup_entry4").build_args(
            {"addr": str(last.net.network)})
        landed = [False]

        def probe() -> None:
            def on_probe(error, response) -> None:
                if error.is_okay and response.get_bool("resolves"):
                    landed[0] = True
            manager.xrl.send(
                Xrl("fea", "fea_fib", "1.0", "lookup_entry4", probe_args),
                on_probe)

        # repro: allow[DET001] throughput benchmark: wall time IS the measurement
        start = time.perf_counter()
        pump()
        if not manager.loop.run_until(
                lambda: completed[0] >= route_count, timeout=300.0):
            raise RuntimeError(
                f"only {completed[0]}/{route_count} adds acknowledged")
        # repro: allow[DET001] real-subprocess benchmark: wall-clock deadline
        probe_deadline = time.monotonic() + 60.0
        while not landed[0]:
            if time.monotonic() > probe_deadline:  # repro: allow[DET001]
                raise RuntimeError("last route never reached the FEA child")
            probe()
            manager.loop.run_until(lambda: landed[0], timeout=0.2)
        elapsed = time.perf_counter() - start  # repro: allow[DET001] benchmark timing
    finally:
        manager.shutdown()
    return route_count / elapsed


def batch_sizes_guard(batch_sizes: Sequence[int]) -> List[int]:
    sizes = [int(size) for size in batch_sizes]
    if any(size < 1 for size in sizes):
        raise ValueError(f"batch sizes must be >= 1, got {sizes}")
    return sizes


def record_trajectory(path, figure: str, unit: str,
                      entry: Dict) -> Dict:
    """Append-or-update one *entry* of a benchmark trajectory file.

    The file holds ``{"figure", "unit", "trajectory": [...]}``; entries
    are keyed by their ``"issue"`` field, so re-running a sweep for the
    same PR updates its entry in place instead of growing the list.
    Returns the full document as written.
    """
    path = Path(path)
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"figure": figure, "unit": unit, "trajectory": []}
    data["figure"] = figure
    data["unit"] = unit
    trajectory = data.setdefault("trajectory", [])
    for index, existing in enumerate(trajectory):
        if existing.get("issue") == entry.get("issue"):
            trajectory[index] = entry
            break
    else:
        trajectory.append(entry)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return data
