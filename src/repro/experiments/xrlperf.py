"""Figure 9: XRL throughput versus argument count.

    "To measure the XRL rate, we send a transaction of 10000 XRLs using a
    pipeline size of 100 XRLs.  Initially, the sender sends 100 XRLs
    back-to-back, and then for every XRL response received it sends a new
    request. ... We evaluate three communication transport mechanisms:
    TCP, UDP and Intra-Process direct calling ..."

UDP deliberately does not pipeline (the family enforces stop-and-wait),
reproducing the paper's illustration of what pipelining buys.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Optional

from repro.eventloop import EventLoop, SystemClock
from repro.xrl import Finder, Xrl, XrlArgs, XrlRouter, parse_idl
from repro.xrl.transport import IntraProcessFamily, TcpFamily, UdpFamily

ECHO_IDL = parse_idl("""
interface bench/1.0 {
    noargs;
}
""")["bench/1.0"]


class _EchoTarget:
    def xrl_noargs(self):
        return None


class XrlPerfResult:
    """XRLs/sec per (family, argument count), with repetitions."""

    def __init__(self) -> None:
        self.rates: Dict[str, Dict[int, List[float]]] = {}

    def record(self, family: str, arg_count: int, rate: float) -> None:
        self.rates.setdefault(family, {}).setdefault(arg_count, []).append(rate)

    def mean(self, family: str, arg_count: int) -> float:
        return statistics.mean(self.rates[family][arg_count])

    def stdev(self, family: str, arg_count: int) -> float:
        samples = self.rates[family][arg_count]
        return statistics.stdev(samples) if len(samples) > 1 else 0.0

    def table(self) -> str:
        """Render the Figure 9 series as text."""
        lines = ["XRL performance for various communication families",
                 f"{'args':>5} " + " ".join(
                     f"{family:>14}" for family in sorted(self.rates))]
        arg_counts = sorted({a for fam in self.rates.values() for a in fam})
        for arg_count in arg_counts:
            row = [f"{arg_count:>5}"]
            for family in sorted(self.rates):
                row.append(f"{self.mean(family, arg_count):>10.0f} /s")
            lines.append(" ".join(row))
        return "\n".join(lines)


def _measure_transaction(loop: EventLoop, client: XrlRouter, target: str,
                         arg_count: int, transaction_size: int,
                         window: int, batch_size: int = 1) -> float:
    """One transaction; returns XRLs/sec (wall clock).

    With *batch_size* > 1 the sender issues requests in groups of that
    size with the ``batch=`` hint set, so the router coalesces each
    group into one wire flush; ``batch_size=1`` is the original
    one-frame-per-XRL pipeline.
    """
    args = XrlArgs()
    for index in range(arg_count):
        args.add_u32(f"a{index}", index)
    xrl = Xrl(target, "bench", "1.0", "noargs", args)
    group = max(1, batch_size)
    completed = [0]
    outstanding = [0]
    sent = [0]

    def pump() -> None:
        while sent[0] < transaction_size:
            chunk = min(group, transaction_size - sent[0])
            if window - outstanding[0] < chunk:
                break
            for __ in range(chunk):
                sent[0] += 1
                outstanding[0] += 1
                client.send(xrl, on_reply, batch=group > 1)

    def on_reply(error, response) -> None:
        outstanding[0] -= 1
        completed[0] += 1
        pump()

    # repro: allow[DET001] throughput benchmark: real elapsed wall time IS the measurement
    start = time.perf_counter()
    pump()
    finished = loop.run_until(lambda: completed[0] >= transaction_size,
                              timeout=120.0)
    elapsed = time.perf_counter() - start  # repro: allow[DET001] benchmark timing
    if not finished:
        raise RuntimeError(
            f"XRL transaction did not finish: {completed[0]}/{transaction_size}"
        )
    return transaction_size / elapsed


def run_xrl_throughput(arg_counts: Optional[List[int]] = None, *,
                       transaction_size: int = 10000,
                       window: int = 100,
                       repetitions: int = 1,
                       families: Optional[List[str]] = None,
                       batch_size: int = 1,
                       codec: Optional[str] = None) -> XrlPerfResult:
    """Run the Figure 9 experiment; returns the rate table.

    The receiving target ignores its arguments (the paper measures
    marshal + transport + dispatch, not handler work), so one ``noargs``
    method accepts any argument list via a raw registration.
    *batch_size* > 1 sends in coalesced groups (the batched-API sweep);
    the default keeps the paper's one-frame-per-XRL pipeline.
    *codec* pins the TCP family's frame codec (``"binary"`` /
    ``"textual"``); ``None`` keeps the environment default.
    """
    if arg_counts is None:
        arg_counts = [0, 5, 10, 15, 20, 25]
    if families is None:
        families = ["intra", "tcp", "udp"]
    result = XrlPerfResult()
    for family_name in families:
        loop = EventLoop(SystemClock())
        finder = Finder()
        if family_name == "intra":
            family = IntraProcessFamily()
            token: Optional[int] = 77  # sender and receiver share a process
        elif family_name == "local":
            # Two processes on the same host (paper §8.1 footnote 1:
            # "very slightly worse" than intra-process).
            from repro.xrl.transport.local import HostLocalFamily

            family = HostLocalFamily()
            token = None
        elif family_name == "tcp":
            family = TcpFamily(codec=codec)
            token = None
        elif family_name == "udp":
            family = UdpFamily()
            token = None
        else:
            raise ValueError(f"unknown family {family_name!r}")
        server = XrlRouter(loop, "bench", finder, families=[family],
                           process_token=token)
        # Raw registration: accept any arguments, return nothing.
        server.register_raw_method("bench/1.0/noargs", lambda args: None)
        client = XrlRouter(loop, "caller", finder, families=[family],
                           process_token=token)
        effective_window = window if family_name != "udp" else window
        # (The UDP family itself serialises on the wire; the window only
        # bounds how many requests queue inside the sender.)
        for arg_count in arg_counts:
            for __ in range(repetitions):
                rate = _measure_transaction(
                    loop, client, "bench", arg_count, transaction_size,
                    effective_window, batch_size)
                result.record(family_name, arg_count, rate)
        client.shutdown()
        server.shutdown()
    return result
