"""Figure 13: BGP route latency induced by a router.

    "We introduced 255 routes from one BGP peer at one second intervals
    and recorded the time that the route appeared at another BGP peer.
    The experiment was performed on XORP, Cisco-4500, Quagga-0.96.5, and
    MRTD-2.2.2a routers. ... This experiment clearly shows the consistent
    behavior achieved by XORP, where the delay never exceeds one second."

Topology: source peer -> router under test -> sink peer.  The router
under test is either our full XORP-style stack (BGP + RIB + FEA processes
over XRLs) or one of the behavioural baselines (event-driven monolithic
"MRTD", 30-second route scanner "Cisco"/"Quagga").  Time is simulated, so
a 500-second experiment runs in well under a second of wall time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp import BgpProcess, BgpState
from repro.bgp.attributes import ASPath, Origin, PathAttributeList
from repro.bgp.messages import UpdateMessage
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.net import IPNet, IPv4
from repro.simnet.baselines import (
    EventDrivenRouterModel,
    ScannerRouterModel,
    _BaselineRouter,
)

SOURCE_AS = 65001
DUT_AS = 65002
SINK_AS = 65003

ROUTER_KINDS = ("xorp", "mrtd", "cisco", "quagga")


class _Source(_BaselineRouter):
    def update_from_peer(self, peer, update):
        pass

    def inject(self, update: UpdateMessage) -> None:
        next(iter(self.peers.values())).send_message(update)


class _Sink(_BaselineRouter):
    def __init__(self, loop, name, local_as, bgp_id):
        super().__init__(loop, name, local_as, bgp_id)
        self.arrivals: List[Tuple[float, IPNet]] = []

    def update_from_peer(self, peer, update):
        for net in update.nlri:
            self.arrivals.append((self.loop.now(), net))


class RouteFlowResult:
    """Propagation delays per router kind."""

    def __init__(self) -> None:
        #: kind -> list of (inject_time, delay_seconds)
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def record(self, kind: str, series: List[Tuple[float, float]]) -> None:
        self.series[kind] = series

    def max_delay(self, kind: str) -> float:
        return max(d for __, d in self.series[kind])

    def mean_delay(self, kind: str) -> float:
        delays = [d for __, d in self.series[kind]]
        return sum(delays) / len(delays)

    def table(self, granularity: float = 1.0) -> str:
        """Summary table plus a coarse sawtooth rendering."""
        lines = ["BGP route latency induced by a router",
                 f"{'router':>8} {'mean(s)':>9} {'max(s)':>8} "
                 f"{'>1s':>6} {'routes':>7}"]
        for kind in self.series:
            delays = [d for __, d in self.series[kind]]
            over = sum(1 for d in delays if d > granularity)
            lines.append(
                f"{kind:>8} {self.mean_delay(kind):>9.2f} "
                f"{self.max_delay(kind):>8.2f} {over:>6} {len(delays):>7}")
        return "\n".join(lines)

    def ascii_plot(self, kind: str, width: int = 64) -> str:
        """A rough Figure 13-style scatter (delay vs injection time)."""
        series = self.series[kind]
        if not series:
            return "(empty)"
        max_delay = max(max(d for __, d in series), 1.0)
        t_max = max(t for t, __ in series)
        rows = 12
        grid = [[" "] * width for __ in range(rows)]
        for t, d in series:
            x = min(width - 1, int(t / max(t_max, 1) * (width - 1)))
            y = min(rows - 1, int(d / max_delay * (rows - 1)))
            grid[rows - 1 - y][x] = "*"
        out = [f"{kind}: delay 0..{max_delay:.1f}s over 0..{t_max:.0f}s"]
        out.extend("".join(row) for row in grid)
        return "\n".join(out)


def _build_xorp_dut(loop: EventLoop):
    """The real stack as the device under test."""
    host = Host(loop=loop)
    from repro.fea import FeaProcess
    from repro.rib import RibProcess
    from repro.xrl import Xrl, XrlArgs

    fea = FeaProcess(host)
    rib = RibProcess(host)
    bgp = BgpProcess(host, local_as=DUT_AS, bgp_id=IPv4("2.2.2.2"))
    # Nexthop resolvability for both peerings.
    args = (XrlArgs().add_txt("protocol", "static")
            .add_ipv4net("net", "10.0.0.0/8").add_ipv4("nexthop", "0.0.0.0")
            .add_u32("metric", 1).add_list("policytags", []))
    error, __ = bgp.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                                  deadline=10)
    if not error.is_okay:
        raise RuntimeError(str(error))

    class _XorpAdapter:
        """Gives the real stack the baseline-model peering interface."""

        def __init__(self) -> None:
            self.handlers = []

        def add_handler(self, peer_addr, peer_as, local_addr):
            handler = bgp.add_peer(PeerConfig(
                IPv4(peer_addr), peer_as, DUT_AS, IPv4(local_addr)))
            self.handlers.append(handler)
            return handler

    return _XorpAdapter()


def run_route_flow(kinds: Optional[List[str]] = None, *,
                   route_count: int = 255,
                   interval: float = 1.0,
                   scan_interval: float = 30.0,
                   session_latency: float = 0.005,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> RouteFlowResult:
    """Run the Figure 13 experiment for each router kind."""
    if kinds is None:
        kinds = list(ROUTER_KINDS)
    result = RouteFlowResult()
    for kind in kinds:
        loop = EventLoop(SimulatedClock())
        source = _Source(loop, "source", SOURCE_AS, "1.1.1.1")
        sink = _Sink(loop, "sink", SINK_AS, "3.3.3.3")
        source_peer = source.add_peer("dut", DUT_AS)
        sink_peer = sink.add_peer("dut", DUT_AS)
        to_watch = [source_peer.fsm, sink_peer.fsm]

        if kind == "xorp":
            adapter = _build_xorp_dut(loop)
            in_handler = adapter.add_handler("10.0.0.1", SOURCE_AS, "10.0.0.2")
            out_handler = adapter.add_handler("10.0.1.1", SINK_AS, "10.0.1.2")
            s1, s2 = session_pair(loop, session_latency)
            source_peer.attach_session(s1)
            in_handler.attach_session(s2)
            s3, s4 = session_pair(loop, session_latency)
            out_handler.attach_session(s3)
            sink_peer.attach_session(s4)
            in_handler.enable()
            out_handler.enable()
            to_watch.extend([in_handler.fsm, out_handler.fsm])
        else:
            if kind == "mrtd":
                dut: _BaselineRouter = EventDrivenRouterModel(
                    loop, kind, DUT_AS, "2.2.2.2")
            else:  # cisco / quagga: the 30-second scanner design
                dut = ScannerRouterModel(loop, kind, DUT_AS, "2.2.2.2",
                                         scan_interval=scan_interval)
            dut_in = dut.add_peer("in", SOURCE_AS)
            dut_out = dut.add_peer("out", SINK_AS)
            s1, s2 = session_pair(loop, session_latency)
            source_peer.attach_session(s1)
            dut_in.attach_session(s2)
            s3, s4 = session_pair(loop, session_latency)
            dut_out.attach_session(s3)
            sink_peer.attach_session(s4)
            dut.start()
            to_watch.extend([dut_in.fsm, dut_out.fsm])

        source.start()
        sink.start()
        if not loop.run_until(
                lambda: all(f.state == BgpState.ESTABLISHED for f in to_watch),
                timeout=120.0):
            raise RuntimeError(f"{kind}: sessions failed to establish")

        attrs = PathAttributeList(origin=Origin.IGP,
                                  as_path=ASPath.from_sequence(SOURCE_AS),
                                  nexthop=IPv4("10.0.0.1"))
        inject_times: Dict = {}
        start = loop.now()
        for index in range(route_count):
            when = start + (index + 1) * interval
            prefix = IPNet(IPv4(0xC6120000 + (index << 8)), 24)  # 198.18.x.0/24
            inject_times[prefix.key()] = when
            loop.call_at(when, lambda p=prefix: source.inject(
                UpdateMessage(attributes=attrs, nlri=[p])))
        if not loop.run_until(lambda: len(sink.arrivals) >= route_count,
                              timeout=route_count * interval
                              + 4 * scan_interval + 120):
            raise RuntimeError(
                f"{kind}: only {len(sink.arrivals)}/{route_count} arrived")
        series = []
        for arrival_time, net in sink.arrivals:
            injected = inject_times.get(net.key())
            if injected is not None:
                series.append((injected - start, arrival_time - injected))
        series.sort()
        result.record(kind, series)
        if progress is not None:
            progress(f"{kind}: max delay {result.max_delay(kind):.2f}s")
    return result
