"""Crash-recovery experiment: kill BGP mid-session, measure reconvergence.

The scenario behind the paper's robustness claim (§3, §6.5): a managed
router (rtrmgr + FEA + RIB + BGP) holds an EBGP session to a remote
speaker while a seeded :class:`~repro.xrl.transport.fault.FaultFamily`
drops a fraction of the frames on the bgp↔rib and rib↔fea XRL streams.
Mid-session the BGP process is killed through the kill protocol family.
The :class:`~repro.rtrmgr.supervisor.Supervisor` must notice the death,
flush BGP's routes from the RIB, restart the module through the Router
Manager (which replays the committed peer configuration), and both the
local FIB and the remote peer must re-converge to the pre-crash routes.

Everything runs on one :class:`~repro.eventloop.clock.SimulatedClock`
and every random decision (fault injection, retry jitter, supervisor
backoff jitter) comes from seeded RNGs, so for a given *seed* the whole
run — including the measured recovery times — is exactly reproducible.
Used by ``tests/test_supervision.py`` (correctness + determinism) and
``benchmarks/test_recovery_time.py`` (time-to-reconverge).
"""

from __future__ import annotations

from typing import Optional

from repro.bgp import BgpProcess
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess, RibRoute
from repro.rtrmgr import RouterManager, Supervisor, SupervisorPolicy
from repro.xrl.finder import DEATH
from repro.xrl.retry import RetryPolicy
from repro.xrl.transport import FaultFamily
from repro.xrl.transport.kill import SIGTERM, KillFamily

#: the route the remote peer announces to the router under test
REMOTE_NET = "99.0.0.0/8"
REMOTE_PROBE = "99.1.1.1"
#: the route the router under test originates towards the remote peer
LOCAL_NET = "88.0.0.0/8"
LOCAL_PROBE = "88.1.1.1"


class RecoveryResult:
    """Timeline (in virtual seconds) and fault counters of one run."""

    __slots__ = ("kill_at", "restart_at", "reconverged_at", "dropped",
                 "passed", "restarts", "retries")

    def __init__(self, *, kill_at: float, restart_at: float,
                 reconverged_at: float, dropped: int, passed: int,
                 restarts: int, retries: int):
        self.kill_at = kill_at
        self.restart_at = restart_at
        self.reconverged_at = reconverged_at
        self.dropped = dropped
        self.passed = passed
        self.restarts = restarts
        self.retries = retries

    @property
    def time_to_restart(self) -> float:
        return self.restart_at - self.kill_at

    @property
    def time_to_reconverge(self) -> float:
        return self.reconverged_at - self.kill_at

    def fingerprint(self) -> tuple:
        """Everything that must match between same-seed runs."""
        return (round(self.time_to_restart, 9),
                round(self.time_to_reconverge, 9),
                self.dropped, self.passed, self.restarts, self.retries)

    def __repr__(self) -> str:
        return (f"<RecoveryResult restart={self.time_to_restart:.3f}s "
                f"reconverge={self.time_to_reconverge:.3f}s "
                f"dropped={self.dropped} retries={self.retries}>")


def run_recovery(*, seed: int = 7, drop_probability: float = 0.10,
                 policy: Optional[SupervisorPolicy] = None) -> RecoveryResult:
    """Run the kill/restart/reconverge scenario once; see module docstring."""
    loop = EventLoop(SimulatedClock())

    # Router under test.  The fault family must wrap the host-local
    # transport before any process exists (routers copy the family list
    # at construction).  Faults are scoped to the route streams; the
    # rtrmgr's control traffic and the supervisor's pings stay clean.
    host = Host(loop=loop)
    fault = FaultFamily.wrap_host(
        host, seed=seed, drop_probability=drop_probability,
        scope={frozenset({"bgp", "rib"}), frozenset({"rib", "fea"})})
    retry = RetryPolicy(max_attempts=8, backoff=0.05, attempt_timeout=0.5,
                        seed=seed + 1)
    fea = FeaProcess(host)
    rib = RibProcess(host, retry_policy=retry)
    manager = RouterManager(host, module_retry=retry)

    # The peers' addresses resolve through this connected route.
    rib.v4.origin("connected").originate(
        RibRoute(IPNet.parse("10.0.0.0/24"), IPv4(0), 0, "connected",
                 ifname="eth0"))

    # Remote speaker: a plain standalone BGP process on its own host.
    remote_host = Host(loop=loop)
    remote = BgpProcess(remote_host, local_as=65002, bgp_id=IPv4("2.2.2.2"),
                        rib_target=None)
    remote_peer = remote.add_peer(PeerConfig(
        IPv4("10.0.0.1"), 65001, 65002, IPv4("10.0.0.2"), holdtime=90))
    remote_peer.enable()

    # (Re)wire the session whenever the manager (re)creates the peering —
    # the initial commit and every supervised restart go through here.
    wires = []

    def rewire(peer_id, handler) -> None:
        if wires:
            old_local, old_remote = wires[-1]
            old_local._peer = None
            old_remote._peer = None
        local_end, remote_end = session_pair(loop, 0.001)
        wires.append((local_end, remote_end))
        handler.attach_session(local_end)
        remote_peer.attach_session(remote_end)
        handler.enable()
        remote_peer.disable()
        remote_peer.enable()

    manager.on_peer_added = rewire

    # Sever the live wire the instant the local BGP process dies, the
    # way a real TCP connection dies with its process.  Without this the
    # remote FSM's connect-retry could resurrect the dead handler's
    # loopback session.
    def bgp_lifetime(event: str, class_name: str, instance: str) -> None:
        if event == DEATH and wires:
            local_end, remote_end = wires[-1]
            local_end._peer = None
            remote_end._peer = None

    host.finder.watch("recovery-harness", "bgp", bgp_lifetime)

    manager.set("protocols bgp local-as", 65001)
    manager.set("protocols bgp bgp-id", "1.1.1.1")
    manager.set("protocols bgp peer 10.0.0.2 as", 65002)
    manager.set("protocols bgp peer 10.0.0.2 local-ip", "10.0.0.1")
    manager.commit()

    remote.xrl_originate_route4(IPNet.parse(REMOTE_NET),
                                IPv4("10.0.0.2"), True)
    manager.modules["bgp"].xrl_originate_route4(IPNet.parse(LOCAL_NET),
                                                IPv4("10.0.0.1"), True)

    def converged() -> bool:
        return (fea.fib4.lookup(IPv4(REMOTE_PROBE)) is not None
                and fea.fib4.lookup(IPv4(LOCAL_PROBE)) is not None
                and remote.decision.route_count == 2)

    if not loop.run_until(converged, timeout=120.0):
        raise RuntimeError("initial convergence failed")

    supervisor = Supervisor(manager, policy if policy is not None else
                            SupervisorPolicy(ping_period=1.0,
                                             ping_timeout=0.5,
                                             backoff_initial=0.2,
                                             backoff_max=2.0,
                                             stable_after=5.0,
                                             seed=seed + 2))
    supervisor.supervise_modules()

    # Locally-originated routes are runtime state (a real config would
    # replay them through a static-route applier); re-inject on restart.
    def restored(name, process) -> None:
        if name == "bgp":
            process.xrl_originate_route4(IPNet.parse(LOCAL_NET),
                                         IPv4("10.0.0.1"), True)

    supervisor.on_restarted = restored
    supervisor.start()

    # Kill the BGP process through the kill protocol family (§6.3).
    victim = manager.modules["bgp"]
    kill_at = loop.now()
    sender = host.kill_family.connect(victim._kill_address, manager.xrl)
    sender.call(KillFamily.encode_signal(1, SIGTERM), lambda frame: None)

    if not loop.run_until(lambda: supervisor.restarts >= 1, timeout=60.0):
        raise RuntimeError("supervisor did not restart bgp")
    restart_at = loop.now()
    if manager.modules["bgp"] is victim:
        raise RuntimeError("bgp module was not replaced")

    if not loop.run_until(converged, timeout=300.0):
        raise RuntimeError("post-restart reconvergence failed")
    reconverged_at = loop.now()

    retries = (manager.modules["bgp"].xrl.retries_performed
               + rib.xrl.retries_performed)
    supervisor.stop()
    result = RecoveryResult(
        kill_at=kill_at, restart_at=restart_at,
        reconverged_at=reconverged_at, dropped=fault.stats.dropped,
        passed=fault.stats.passed, restarts=supervisor.restarts,
        retries=retries)
    host.shutdown()
    remote_host.shutdown()
    return result
