"""Dataplane-backend resilience: blackhole time and throttled flushes.

Two scenarios behind the pluggable-FIB robustness story:

* :func:`run_backend_resilience` — a router (RIB + FEA driving the
  fault-injecting netlink-like backend) converges, then the backend
  **crashes**, losing its tables and everything in flight.  Route churn
  continues while the dataplane is down (the shadow tables absorb it and
  keep serving lookups — graceful degradation), the backend reattaches,
  and the health up-edge triggers reconciliation.  The headline number
  is the **dataplane blackhole time**: virtual seconds from the crash
  until the backend's ``dump()`` again equals the FEA's shadow table.

* :func:`run_throttled_flush` — the RIB flushes a full table into a
  backend whose completion latency is several times the healthy rate.
  Without backpressure the FEA's un-acked queue would grow with the
  table size; with it, the driver latches ``congested`` at its high
  watermark, the reply piggyback pauses the RIB's flow controller, and
  the peak queue stays under ``high_watermark`` plus one in-flight
  window regardless of how many routes are flushed.  The run reports
  that peak against its bound.

Everything runs on one :class:`~repro.eventloop.clock.SimulatedClock`
and all fault decisions come from the seeded
:class:`~repro.fea.backends.netlink.BackendFaultPlan`, so a given seed
reproduces the whole timeline exactly.  Used by
``benchmarks/test_backend_resilience.py`` (the BENCH_backend.json
trajectory) and the chaos tests.
"""

from __future__ import annotations

from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import BackendFaultPlan, FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess, RibRoute


def _route(i: int) -> RibRoute:
    return RibRoute(IPNet(IPv4(0x0A000000 + (i << 8)), 24),
                    IPv4("192.168.0.1"), 1, "static", ifname="eth0")


class ResilienceResult:
    """Timeline (virtual seconds) and repair counters of one crash run."""

    __slots__ = ("crash_at", "restart_at", "reconverged_at", "routes",
                 "churned", "deferred", "reconcile_adds",
                 "reconcile_deletes", "served_during_outage")

    def __init__(self, *, crash_at: float, restart_at: float,
                 reconverged_at: float, routes: int, churned: int,
                 deferred: int, reconcile_adds: int, reconcile_deletes: int,
                 served_during_outage: int):
        self.crash_at = crash_at
        self.restart_at = restart_at
        self.reconverged_at = reconverged_at
        self.routes = routes
        self.churned = churned
        self.deferred = deferred
        self.reconcile_adds = reconcile_adds
        self.reconcile_deletes = reconcile_deletes
        self.served_during_outage = served_during_outage

    @property
    def blackhole_time(self) -> float:
        """Crash -> dataplane back in sync with the shadow table."""
        return self.reconverged_at - self.crash_at

    @property
    def repair_time(self) -> float:
        """Reattach -> reconciliation converged."""
        return self.reconverged_at - self.restart_at

    def fingerprint(self) -> tuple:
        """Everything that must match between same-seed runs."""
        return (round(self.blackhole_time, 9), round(self.repair_time, 9),
                self.deferred, self.reconcile_adds, self.reconcile_deletes,
                self.served_during_outage)

    def __repr__(self) -> str:
        return (f"<ResilienceResult blackhole={self.blackhole_time:.3f}s "
                f"repair={self.repair_time:.3f}s "
                f"adds={self.reconcile_adds} deletes={self.reconcile_deletes}>")


def run_backend_resilience(*, seed: int = 7, routes: int = 64,
                           churn: int = 16, outage: float = 0.25,
                           nack_probability: float = 0.05,
                           drop_ack_probability: float = 0.05
                           ) -> ResilienceResult:
    """Run the crash/churn/reattach/reconcile scenario once."""
    loop = EventLoop(SimulatedClock())
    host = Host(loop=loop)
    fea = FeaProcess(host, backend="netlink", backend_options={
        "fault_plan": BackendFaultPlan(
            seed=seed, nack_probability=nack_probability,
            drop_ack_probability=drop_ack_probability),
        "queue_capacity": 2 * routes,
    }, driver_options={"retry_base": 0.01, "ack_timeout": 0.2})
    rib = RibProcess(host)
    origin = rib.v4.origin("static")

    def consistent() -> bool:
        shadow = {entry for __, entry in fea.fib4.entries()}
        return (fea.driver.settled and rib.txq.idle and rib.flow.idle
                and set(fea.backend.dump(32)) == shadow)

    origin.originate_batch([_route(i) for i in range(routes)])
    if not loop.run_until(lambda: len(fea.fib4) == routes and consistent(),
                          timeout=300.0):
        raise RuntimeError("initial convergence failed")

    # The dataplane dies: tables and every in-flight op are lost.
    crash_at = loop.now()
    fea.backend.crash()

    # Churn continues during the outage; only the shadow absorbs it.
    for i in range(churn):
        origin.originate(_route(routes + i))
    for i in range(churn // 2):
        origin.withdraw(_route(i).net)
    loop.run(duration=outage)

    # Graceful degradation: lookups answer from the shadow throughout.
    served = 0
    for i in range(churn // 2, routes + churn):
        if fea.fib4.lookup(IPv4(0x0A000007 + (i << 8))) is not None:
            served += 1

    restart_at = loop.now()
    fea.backend.restart()  # the up edge triggers reconciliation
    if not loop.run_until(consistent, timeout=300.0):
        raise RuntimeError("post-restart reconciliation failed")
    reconverged_at = loop.now()

    def metric(name: str) -> int:
        return fea.metrics.get(f"fea.{name}").value

    result = ResilienceResult(
        crash_at=crash_at, restart_at=restart_at,
        reconverged_at=reconverged_at, routes=routes, churned=churn,
        deferred=metric("backend.deferred"),
        reconcile_adds=metric("backend.reconcile.adds"),
        reconcile_deletes=metric("backend.reconcile.deletes"),
        served_during_outage=served)
    rib.shutdown()
    fea.shutdown()
    host.shutdown()
    return result


class ThrottledFlushResult:
    """Queue behaviour of one full-table flush into a slow backend."""

    __slots__ = ("routes", "elapsed", "peak_pending", "pending_bound",
                 "flow_peak_depth", "polls_sent", "paused")

    def __init__(self, *, routes: int, elapsed: float, peak_pending: int,
                 pending_bound: int, flow_peak_depth: int, polls_sent: int,
                 paused: bool):
        self.routes = routes
        self.elapsed = elapsed
        self.peak_pending = peak_pending
        self.pending_bound = pending_bound
        self.flow_peak_depth = flow_peak_depth
        self.polls_sent = polls_sent
        self.paused = paused

    @property
    def bounded(self) -> bool:
        """The watermark bound held: no unbounded queue growth."""
        return self.peak_pending <= self.pending_bound

    def fingerprint(self) -> tuple:
        return (round(self.elapsed, 9), self.peak_pending,
                self.flow_peak_depth, self.polls_sent)

    def __repr__(self) -> str:
        return (f"<ThrottledFlushResult peak={self.peak_pending}"
                f"/{self.pending_bound} polls={self.polls_sent} "
                f"elapsed={self.elapsed:.3f}s>")


def run_throttled_flush(*, routes: int = 256, slowdown: int = 10,
                        window: int = 32, high_watermark: int = 64,
                        low_watermark: int = 16) -> ThrottledFlushResult:
    """Flush *routes* into a backend *slowdown*x slower than baseline.

    The bound asserted by the benchmark: the FEA's un-acked queue never
    exceeds ``high_watermark + window`` — once the driver latches
    congested, at most one more in-flight window can land before the
    RIB's flow controller sees the piggybacked signal and pauses.
    """
    loop = EventLoop(SimulatedClock())
    host = Host(loop=loop)
    fea = FeaProcess(host, backend="netlink", backend_options={
        # The healthy baseline completes in ~1 ms; this backend is
        # `slowdown`x that, per operation.
        "fault_plan": BackendFaultPlan(seed=0, latency=0.001 * slowdown),
        "queue_capacity": 2 * (high_watermark + window),
    }, driver_options={"high_watermark": high_watermark,
                       "low_watermark": low_watermark})
    rib = RibProcess(host, flow_options={"window": window})
    origin = rib.v4.origin("static")

    start = loop.now()
    origin.originate_batch([_route(i) for i in range(routes)])
    done = lambda: (len(fea.backend.dump(32)) == routes  # noqa: E731
                    and fea.driver.settled and rib.txq.idle
                    and rib.flow.idle)
    if not loop.run_until(done, timeout=600.0):
        raise RuntimeError(
            f"throttled flush stalled: {len(fea.backend.dump(32))}"
            f"/{routes} installed, {fea.driver.queued} pending")
    elapsed = loop.now() - start

    result = ThrottledFlushResult(
        routes=routes, elapsed=elapsed,
        peak_pending=fea.driver.peak_pending,
        pending_bound=high_watermark + window,
        flow_peak_depth=rib.flow.peak_depth,
        polls_sent=rib.flow.polls_sent,
        paused=rib.flow.polls_sent > 0)
    rib.shutdown()
    fea.shutdown()
    host.shutdown()
    return result
