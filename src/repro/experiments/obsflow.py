"""The observability scenario: trace routes BGP → RIB → FEA and scrape
every process over ``metrics/1.0``.

A full XORP-style stack (BGP + RIB + FEA over XRLs) runs on a simulated
clock with the :class:`~repro.obs.Observability` layer armed.  A handful
of prefixes are registered with the tracer, originated into BGP over its
public XRL interface, and followed to the FEA FIB; an external collector
process then scrapes each process's metrics and pulls the span trees over
the ``trace/1.0`` interface — the scrape goes over the same XRL surface
any third-party monitoring process would use.

The run is audited into :class:`~repro.analysis.core.Finding`s:

* ``OBS001`` — a traced route never produced a ``fib`` span (it vanished
  somewhere in the pipeline);
* ``OBS002`` — a metric the scenario must move (FIB size, transmit-queue
  sent counts) is missing or zero in the scraped report;
* ``OBS003`` — a span's timestamp precedes its parent's (causality ran
  backwards).

Everything is simulated-clock deterministic: two identical runs render
byte-identical reports, which the CLI's ``--json`` contract relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.core import Finding
from repro.bgp import BgpProcess
from repro.core.process import Host, XorpProcess
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.interfaces import TRACE_IDL
from repro.net import IPNet, IPv4
from repro.obs import Observability
from repro.rib import RibProcess
from repro.xrl import Xrl, XrlArgs

#: the metrics this scenario must visibly move; zero means broken plumbing
EXPECTED_NONZERO = (
    "fea.fib4.routes",
    "fea.backend.acks",
    "rib.txq.sent",
    "bgp.txq.sent",
)


class ObsFlowReport:
    """Everything one run produced: spans, scrapes, hops, findings."""

    def __init__(self) -> None:
        self.route_count = 0
        #: trace_id -> rendered span lines (the trace/1.0 wire form)
        self.spans: Dict[int, List[str]] = {}
        #: trace_id -> ordered route-visible hop sites
        self.hop_sequences: Dict[int, List[str]] = {}
        #: target -> metrics/1.0 report text
        self.scrapes: Dict[str, str] = {}
        self.findings: List[Finding] = []

    def to_dict(self) -> dict:
        return {
            "route_count": self.route_count,
            "spans": {str(k): v for k, v in sorted(self.spans.items())},
            "hop_sequences": {str(k): v for k, v
                              in sorted(self.hop_sequences.items())},
            "scrapes": dict(sorted(self.scrapes.items())),
            "findings": [f.__dict__ for f in self.findings],
        }


def _audit_spans(obs: Observability, report: ObsFlowReport) -> None:
    for trace_id in sorted(obs.tracer._traces):
        ctx = obs.tracer.by_id(trace_id)
        report.spans[trace_id] = [s.to_text() for s in ctx.spans]
        report.hop_sequences[trace_id] = obs.tracer.hop_sequence(trace_id)
        if not any(s.kind == "fib" for s in ctx.spans):
            report.findings.append(Finding(
                path="obsflow", line=0, rule="OBS001",
                message=f"traced route {ctx.net} never reached the FEA FIB "
                        f"({len(ctx.spans)} span(s) recorded)"))
        by_id = {s.span_id: s for s in ctx.spans}
        for span in ctx.spans:
            parent = by_id.get(span.parent_id)
            if parent is not None and span.ts < parent.ts:
                report.findings.append(Finding(
                    path="obsflow", line=0, rule="OBS003",
                    message=f"trace {trace_id} span {span.span_id} "
                            f"({span.site}/{span.op}) at t={span.ts} precedes "
                            f"its parent {parent.span_id} at t={parent.ts}"))


def _audit_scrapes(report: ObsFlowReport) -> None:
    values: Dict[str, str] = {}
    for text in report.scrapes.values():
        for line in text.splitlines():
            parts = line.split(" ", 2)
            if len(parts) == 3:
                values[parts[0]] = parts[2]
    for name in EXPECTED_NONZERO:
        value = values.get(name)
        if value is None:
            report.findings.append(Finding(
                path="obsflow", line=0, rule="OBS002",
                message=f"expected metric {name} missing from the scrape"))
        elif value == "0":
            report.findings.append(Finding(
                path="obsflow", line=0, rule="OBS002",
                message=f"expected metric {name} is zero after the traced "
                        "route flow"))


def run_obs_flow(route_count: int = 6, *,
                 loop: Optional[EventLoop] = None) -> ObsFlowReport:
    """Run the traced route flow + scrape scenario; audit into findings."""
    loop = loop if loop is not None else EventLoop(SimulatedClock())
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host)
    bgp = BgpProcess(host, local_as=65002, bgp_id=IPv4("2.2.2.2"))
    collector = XorpProcess(host, "collector")
    scraper = collector.create_router("collector")

    # Nexthop resolvability for the originated routes.
    cover = (XrlArgs().add_txt("protocol", "static")
             .add_ipv4net("net", "10.0.0.0/8").add_ipv4("nexthop", "0.0.0.0")
             .add_u32("metric", 1).add_list("policytags", []))
    error, __ = bgp.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", cover),
                                  deadline=10)
    if not error.is_okay:
        raise RuntimeError(str(error))

    report = ObsFlowReport()
    report.route_count = route_count
    obs = Observability(clock=loop.clock.now)
    # Expose the span trees over XRLs so the collector (or any external
    # process) can pull them the same way it scrapes metrics.
    bgp.xrl.bind(TRACE_IDL, obs.tracer)

    prefixes = [IPNet(IPv4(0xC6330000 + (index << 8)), 24)  # 198.51.x.0/24
                for index in range(route_count)]
    with obs:
        for prefix in prefixes:
            obs.trace(prefix)
        for prefix in prefixes:
            args = (XrlArgs().add_ipv4net("net", prefix)
                    .add_ipv4("next_hop", "10.0.0.1").add_bool("unicast", True))
            error, __ = bgp.xrl.send_sync(
                Xrl("bgp", "bgp", "1.0", "originate_route4", args),
                deadline=10)
            if not error.is_okay:
                raise RuntimeError(str(error))
        loop.run_until(
            lambda: all(fea.fib4.exact(p) is not None for p in prefixes),
            timeout=60.0)

        # The external scrape: one metrics/1.0 call per process, plus the
        # span trees over trace/1.0.
        for target in ("bgp", "rib", "fea"):
            error, returns = scraper.send_sync(
                Xrl(target, "metrics", "1.0", "get_metrics"), deadline=10)
            report.scrapes[target] = (returns.get_txt("report")
                                      if error.is_okay else f"error: {error}")
        for trace_id in sorted(obs.tracer._traces):
            error, returns = scraper.send_sync(
                Xrl("bgp", "trace", "1.0", "get_spans",
                    XrlArgs().add_u32("trace_id", trace_id)), deadline=10)
            if not error.is_okay:
                report.findings.append(Finding(
                    path="obsflow", line=0, rule="OBS002",
                    message=f"trace/1.0 get_spans({trace_id}) failed: "
                            f"{error}"))

    _audit_spans(obs, report)
    _audit_scrapes(report)
    host.shutdown()
    return report
