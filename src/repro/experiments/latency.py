"""Figures 10-12: route propagation latency through the profiling points.

    "The key metric we care about is how long it takes for a route newly
    received by BGP to be installed into the forwarding engine."

The experiment builds one XORP router — BGP, RIB and FEA as separate
processes communicating over XRLs — establishes one or two BGP peerings,
optionally preloads a full synthetic backbone feed, then injects test
routes one at a time and reads the eight profiling points:

1. Entering BGP                      (``bgp``/``route_ribin``)
2. Queued for transmission to RIB    (``bgp``/``route_queued_rib``)
3. Sent to RIB                       (``bgp``/``route_sent_rib``)
4. Arriving at the RIB               (``rib``/``route_arrive_rib``)
5. Queued for transmission to FEA    (``rib``/``route_queued_fea``)
6. Sent to the FEA                   (``rib``/``route_sent_fea``)
7. Arriving at FEA                   (``fea``/``route_arrive_fea``)
8. Entering kernel                   (``fea``/``route_kernel``)

Substitutions vs. the paper's testbed (see DESIGN.md): the experiment is
event-paced rather than 2-second-paced (each route is withdrawn as soon
as the previous one reached the kernel), and runs on the wall clock with
host-local IPC, so the absolute numbers reflect this Python stack rather
than 2004 C++ on FreeBSD — the *shape* (flat latency under a full table,
IPC-hop-dominated profile) is the reproduction target.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

from repro.bgp import BgpProcess, BgpState
from repro.bgp.messages import UpdateMessage
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SystemClock
from repro.experiments.synth import synthetic_feed
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.simnet.baselines import _BaselineRouter
from repro.xrl import Xrl, XrlArgs

PROFILE_POINTS = [
    ("Entering BGP", "bgp", "route_ribin"),
    ("Queued for transmission to the RIB", "bgp", "route_queued_rib"),
    ("Sent to RIB", "bgp", "route_sent_rib"),
    ("Arriving at the RIB", "rib", "route_arrive_rib"),
    ("Queued for transmission to the FEA", "rib", "route_queued_fea"),
    ("Sent to the FEA", "rib", "route_sent_fea"),
    ("Arriving at FEA", "fea", "route_arrive_fea"),
    ("Entering kernel", "fea", "route_kernel"),
]


class _Injector(_BaselineRouter):
    """A BGP speaker that only injects; it never propagates."""

    def update_from_peer(self, peer, update):
        pass  # sink anything the router under test sends us

    def inject(self, update: UpdateMessage) -> None:
        peer = next(iter(self.peers.values()))
        peer.send_message(update)


class LatencyResult:
    """Per-point latency statistics plus the per-route series."""

    def __init__(self, initial_routes: int, peering: str):
        self.initial_routes = initial_routes
        self.peering = peering
        #: per point label -> list of per-route deltas (ms from point 1)
        self.deltas: Dict[str, List[float]] = {
            label: [] for label, __, __ in PROFILE_POINTS}

    def stats(self, label: str) -> Tuple[float, float, float, float]:
        samples = self.deltas[label]
        if not samples:
            return (0.0, 0.0, 0.0, 0.0)
        avg = statistics.mean(samples)
        sd = statistics.stdev(samples) if len(samples) > 1 else 0.0
        return avg, sd, min(samples), max(samples)

    def table(self) -> str:
        """Render the paper's per-figure table (times in ms)."""
        lines = [
            f"Route propagation latency (ms); {self.initial_routes} initial "
            f"routes, {self.peering} peering",
            f"{'Profile Point':<38} {'Avg':>8} {'SD':>8} {'Min':>8} {'Max':>8}",
        ]
        for label, __, __ in PROFILE_POINTS:
            if label == "Entering BGP":
                lines.append(f"{label:<38} {'-':>8} {'-':>8} {'-':>8} {'-':>8}")
                continue
            avg, sd, low, high = self.stats(label)
            lines.append(
                f"{label:<38} {avg:>8.3f} {sd:>8.3f} {low:>8.3f} {high:>8.3f}")
        return "\n".join(lines)

    def kernel_latencies(self) -> List[float]:
        return list(self.deltas["Entering kernel"])

    def ascii_plot(self, width: int = 64, rows: int = 10) -> str:
        """Scatter of kernel-entry latency per route (the figures' y axis)."""
        samples = self.kernel_latencies()
        if not samples:
            return "(no samples)"
        top = max(samples)
        grid = [[" "] * width for __ in range(rows)]
        for index, value in enumerate(samples):
            x = min(width - 1, index * width // max(1, len(samples)))
            y = min(rows - 1, int(value / top * (rows - 1)))
            grid[rows - 1 - y][x] = "*"
        header = (f"kernel-entry latency per route: 0..{top:.2f} ms over "
                  f"{len(samples)} routes")
        return "\n".join([header] + ["".join(row) for row in grid])


def _build_router(loop: EventLoop):
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host)
    bgp = BgpProcess(host, local_as=65000, bgp_id=IPv4("1.1.1.1"))
    return host, fea, rib, bgp


def _connect_injector(loop, bgp, local_addr: str, peer_addr: str,
                      peer_as: int, name: str) -> _Injector:
    injector = _Injector(loop, name, peer_as, peer_addr)
    injector_peer = injector.add_peer("dut", 65000)
    handler = bgp.add_peer(PeerConfig(
        IPv4(peer_addr), peer_as, bgp.local_as, IPv4(local_addr)))
    session_a, session_b = session_pair(loop, latency=0.0)
    injector_peer.attach_session(session_a)
    handler.attach_session(session_b)
    injector.start()
    handler.enable()
    if not loop.run_until(
            lambda: handler.fsm.state == BgpState.ESTABLISHED
            and injector_peer.fsm.state == BgpState.ESTABLISHED,
            timeout=30.0):
        raise RuntimeError(f"peering {name} failed to establish")
    return injector


def _drain(loop: EventLoop, predicate, timeout: float = 1800.0) -> bool:
    """Run until *predicate* holds AND the loop has nothing left to do."""
    if not loop.run_until(predicate, timeout=timeout):
        return False
    while True:
        progressed = loop.run_once(block=False)
        if not progressed:
            if predicate():
                return True
            if not loop.run_until(predicate, timeout=timeout):
                return False


def _collect_point_times(processes, prefix_text: str) -> Dict[str, float]:
    """Timestamp of each point's 'add <prefix>' record (latest occurrence)."""
    times: Dict[str, float] = {}
    wanted = f"add {prefix_text}"
    for label, process_name, var_name in PROFILE_POINTS:
        profiler = processes[process_name].profiler
        for timestamp, data in reversed(profiler.var(var_name).entries):
            if data == wanted:
                times[label] = timestamp
                break
    return times


def run_latency_experiment(*, initial_routes: int = 0,
                           same_peering: bool = True,
                           test_routes: int = 255,
                           feed_seed: int = 2004,
                           loop: Optional[EventLoop] = None,
                           progress=None) -> LatencyResult:
    """Run one of the Figure 10-12 experiments.

    * Figure 10: ``initial_routes=0``
    * Figure 11: ``initial_routes=146515, same_peering=True``
    * Figure 12: ``initial_routes=146515, same_peering=False``
    """
    loop = loop if loop is not None else EventLoop(SystemClock())
    host, fea, rib, bgp = _build_router(loop)
    processes = {"bgp": bgp, "rib": rib, "fea": fea}

    # One static route for nexthop resolvability — "we keep one route
    # installed during the test to prevent additional interactions with
    # the RIB".
    args = (XrlArgs().add_txt("protocol", "static")
            .add_ipv4net("net", "10.0.0.0/8").add_ipv4("nexthop", "0.0.0.0")
            .add_u32("metric", 1).add_list("policytags", []))
    error, __ = bgp.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                                  deadline=10)
    if not error.is_okay:
        raise RuntimeError(f"static route install failed: {error}")

    feed_injector = _connect_injector(loop, bgp, "10.0.0.1", "10.0.0.2",
                                      65002, "feed")
    if same_peering:
        test_injector = feed_injector
        test_nexthop = "10.0.0.2"
    else:
        test_injector = _connect_injector(loop, bgp, "10.0.1.1", "10.0.1.2",
                                          65003, "test")
        test_nexthop = "10.0.1.2"

    # Preload the backbone feed.
    if initial_routes:
        loaded = 0
        for attributes, prefixes in synthetic_feed(initial_routes,
                                                   seed=feed_seed):
            feed_injector.inject(UpdateMessage(attributes=attributes,
                                               nlri=prefixes))
            loaded += len(prefixes)
            if progress is not None and loaded % 20000 < len(prefixes):
                progress(f"injected {loaded}/{initial_routes} feed routes")
            # Drain periodically so buffers stay bounded.
            loop.run_until(lambda: bgp.txq.idle, timeout=60.0)
        if not _drain(loop, lambda: (
                bgp.decision.route_count >= initial_routes
                and bgp.fanout.queue_length == 0
                and bgp.txq.idle and rib.txq.idle)):
            raise RuntimeError(
                f"feed preload incomplete: {bgp.decision.route_count}"
                f"/{initial_routes}")
        if progress is not None:
            progress(f"feed loaded: {bgp.decision.route_count} routes")

    # Enable the profiling points (via their XRL-facing profilers).
    for __, process_name, var_name in PROFILE_POINTS:
        processes[process_name].profiler.enable(var_name)

    from repro.bgp.attributes import ASPath, Origin, PathAttributeList

    test_attrs = PathAttributeList(
        origin=Origin.IGP,
        as_path=ASPath.from_sequence(
            65002 if same_peering else 65003),
        nexthop=IPv4(test_nexthop))

    result = LatencyResult(initial_routes,
                           "same" if same_peering else "different")
    kernel_var = fea.profiler.var("route_kernel")

    for index in range(test_routes):
        prefix = IPNet(IPv4((198 << 24) | (18 << 16) | (index << 8)), 24)
        prefix_text = str(prefix)
        installed = f"add {prefix_text}"
        test_injector.inject(UpdateMessage(attributes=test_attrs,
                                           nlri=[prefix]))
        if not loop.run_until(
                lambda: any(data == installed
                            for __, data in kernel_var.entries),
                timeout=30.0):
            raise RuntimeError(f"route {prefix_text} never reached the kernel")
        times = _collect_point_times(processes, prefix_text)
        base = times.get("Entering BGP")
        if base is not None:
            for label in result.deltas:
                if label in times:
                    result.deltas[label].append((times[label] - base) * 1000.0)
        # Withdraw and let the withdrawal drain before the next route.
        test_injector.inject(UpdateMessage(withdrawn=[prefix]))
        _drain(loop, lambda: (bgp.fanout.queue_length == 0
                              and bgp.txq.idle and rib.txq.idle),
               timeout=30.0)
        if progress is not None and (index + 1) % 50 == 0:
            progress(f"measured {index + 1}/{test_routes} routes")

    return result
