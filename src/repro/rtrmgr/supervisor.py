"""Process supervision: the watchdog behind the paper's robustness claim.

    "If a routing protocol process dies, the FEA will know precisely
    which routes ... need to be removed, and the Router Manager knows it
    needs to restart the errant process."  (paper §3, §6.5)

The :class:`Supervisor` is the consumer the Finder's birth/death watches
were built for.  For every supervised module it:

* subscribes to lifetime events, so a crash is noticed the moment the
  dead process deregisters;
* XRL-pings ``common/0.1 get_status`` on a configurable period with a
  per-call deadline, so a *wedged* process (alive but unresponsive) is
  also caught;
* flushes the dead module's routes out of the RIB, so stale forwarding
  state does not outlive its owner;
* restarts the module through the Router Manager's existing factories,
  with jittered exponential backoff between attempts, a restart-storm
  budget (give up after N restarts inside a sliding window), and
  dependency-aware ordering (the RIB is brought back before the
  protocols that feed it).

All timing comes off the shared event loop and all jitter from one
seeded RNG, so supervised recovery is deterministic under the simulated
clock — the chaos tests in ``tests/test_supervision.py`` depend on it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.xrl import XrlArgs, XrlError
from repro.xrl.finder import BIRTH, DEATH
from repro.xrl.xrl import Xrl

#: modules restarted only after these (supervised) modules are up again
MODULE_DEPENDENCIES: Dict[str, Tuple[str, ...]] = {
    "bgp": ("rib",),
    "rip": ("fea", "rib"),
    "ospf": ("fea", "rib"),
    "static_routes": ("rib",),
    "pim": ("fea", "rib", "mld6igmp"),
    "rib": ("fea",),
}

#: RIB origin-table protocols owned by each module class; flushed on death
MODULE_RIB_PROTOCOLS: Dict[str, Tuple[str, ...]] = {
    "bgp": ("ebgp", "ibgp"),
    "rip": ("rip",),
    "ospf": ("ospf",),
    "static_routes": ("static",),
}

UP = "up"
DOWN = "down"
RESTARTING = "restarting"
FAILED = "failed"


class SupervisorPolicy:
    """Tunable knobs of one supervisor (documented in DESIGN.md).

    *ping_period* / *ping_timeout* / *ping_failures*: how liveness is
    probed and how many consecutive missed pings declare a module wedged.

    *backoff_initial* × *backoff_multiplier* (capped at *backoff_max*,
    spread by ±\\ *jitter*) paces restart attempts; the attempt counter
    resets once a module stays up for *stable_after* seconds.

    *storm_budget* restarts within *storm_window* seconds mark the module
    FAILED — a crash loop is a bug, not a transient, and restarting it
    forever would hide that.
    """

    __slots__ = ("ping_period", "ping_timeout", "ping_failures",
                 "backoff_initial", "backoff_multiplier", "backoff_max",
                 "jitter", "storm_window", "storm_budget", "stable_after",
                 "seed")

    def __init__(self, *, ping_period: float = 5.0,
                 ping_timeout: float = 2.0,
                 ping_failures: int = 3,
                 backoff_initial: float = 0.5,
                 backoff_multiplier: float = 2.0,
                 backoff_max: float = 30.0,
                 jitter: float = 0.1,
                 storm_window: float = 300.0,
                 storm_budget: int = 5,
                 stable_after: float = 60.0,
                 seed: int = 0):
        self.ping_period = ping_period
        self.ping_timeout = ping_timeout
        self.ping_failures = ping_failures
        self.backoff_initial = backoff_initial
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.storm_window = storm_window
        self.storm_budget = storm_budget
        self.stable_after = stable_after
        self.seed = seed


class _ModuleState:
    __slots__ = ("name", "class_name", "restart", "depends_on", "status",
                 "instances", "ping_failures", "attempts", "restart_times",
                 "restart_timer", "stable_timer", "last_error")

    def __init__(self, name: str, class_name: str, restart: Callable,
                 depends_on: Tuple[str, ...]):
        self.name = name
        self.class_name = class_name
        self.restart = restart
        self.depends_on = depends_on
        self.status = DOWN
        self.instances: set = set()
        self.ping_failures = 0
        self.attempts = 0          # consecutive restart attempts
        self.restart_times: List[float] = []   # storm-budget window
        self.restart_timer = None
        self.stable_timer = None
        self.last_error: Optional[str] = None

    def cancel_timers(self) -> None:
        for timer in (self.restart_timer, self.stable_timer):
            if timer is not None:
                timer.cancel()
        self.restart_timer = None
        self.stable_timer = None


class Supervisor:
    """Watchdog over the Router Manager's modules (and friends).

    ``supervise_modules()`` adopts everything the manager has started;
    :meth:`add_module` registers extra processes (the RIB or FEA are
    normally created outside the manager) with a custom restart callable.
    Call :meth:`start` once after registering; :meth:`stop` cancels every
    timer and watch.
    """

    def __init__(self, manager, policy: Optional[SupervisorPolicy] = None):
        self.manager = manager
        self.loop = manager.loop
        self.finder = manager.host.finder
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._rng = random.Random(self.policy.seed)
        self._modules: Dict[str, _ModuleState] = {}
        self._ping_timer = None
        self._running = False
        self._watcher = f"supervisor:{manager.xrl.instance_name}"
        #: hooks: on_restarted(name, process), on_gave_up(name, reason)
        self.on_restarted: Optional[Callable] = None
        self.on_gave_up: Optional[Callable] = None
        self.restarts = 0
        manager.metrics.gauge("supervisor.restarts", lambda: self.restarts)
        manager.metrics.gauge("supervisor.modules",
                              lambda: len(self._modules))

    # -- registration -------------------------------------------------------
    def add_module(self, name: str, *, restart: Callable,
                   class_name: Optional[str] = None,
                   depends_on: Optional[Iterable[str]] = None) -> None:
        """Supervise *name*; *restart* must return the new process."""
        if name in self._modules:
            raise ValueError(f"module {name!r} already supervised")
        deps = tuple(depends_on) if depends_on is not None \
            else MODULE_DEPENDENCIES.get(name, ())
        state = _ModuleState(name, class_name or name, restart, deps)
        self._modules[name] = state
        if self._running:
            self._watch(state)

    def supervise_modules(self) -> None:
        """Adopt every module the Router Manager currently runs."""
        for name in self.manager.modules:
            if name not in self._modules:
                self.add_module(
                    name,
                    restart=self._manager_restart(name))

    def _manager_restart(self, name: str) -> Callable:
        return lambda: self.manager.restart_module(name)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for state in self._modules.values():
            self._watch(state)
        if self.policy.ping_period > 0:
            self._ping_timer = self.loop.call_periodic(
                self.policy.ping_period, self._ping_all,
                name="supervisor-ping")

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None
        for state in self._modules.values():
            state.cancel_timers()
            self.finder.unwatch(self._watcher, state.class_name)

    def status(self, name: str) -> str:
        return self._modules[name].status

    def _watch(self, state: _ModuleState) -> None:
        # watch() replays a BIRTH per live instance, so status starts true.
        self.finder.watch(
            self._watcher, state.class_name,
            lambda event, cls, instance, s=state:
                self._on_lifetime(s, event, instance))

    # -- lifetime events -----------------------------------------------------
    def _on_lifetime(self, state: _ModuleState, event: str,
                     instance: str) -> None:
        if event == BIRTH:
            state.instances.add(instance)
            if state.status != FAILED:
                state.status = UP
                state.ping_failures = 0
            return
        if event == DEATH:
            state.instances.discard(instance)
            if state.instances or not self._running:
                return
            self._flush_rib_routes(state)
            if state.status == UP:
                # Unexpected death: the crash path.  (RESTARTING deaths
                # are our own doing and already have a restart queued.)
                state.status = DOWN
                self._schedule_restart(state, f"{instance} died")

    def _flush_rib_routes(self, state: _ModuleState) -> None:
        """Purge the dead module's origin tables from the RIB (§3)."""
        protocols = MODULE_RIB_PROTOCOLS.get(state.class_name, ())
        if not protocols or not self.finder.known_target("rib"):
            return
        for protocol in protocols:
            self.manager.xrl.send(
                Xrl("rib", "rib", "1.0", "flush_table4",
                    XrlArgs().add_txt("protocol", protocol)))

    # -- pinging -------------------------------------------------------------
    def _ping_all(self) -> None:
        for state in self._modules.values():
            if state.status == UP:
                self._ping(state)

    def _ping(self, state: _ModuleState) -> None:
        xrl = Xrl(state.class_name, "common", "0.1", "get_status", XrlArgs())

        def completion(error: XrlError, args: XrlArgs) -> None:
            if state.status != UP:
                return  # died (and was handled) while the ping was in flight
            if error.is_okay and args.get_txt("status") == "running":
                state.ping_failures = 0
                return
            state.ping_failures += 1
            if state.ping_failures >= self.policy.ping_failures:
                # Wedged: alive enough to be registered, too sick to
                # answer.  Treat like a death; restart_module tears the
                # old instance down first.
                state.status = DOWN
                self._schedule_restart(
                    state, f"{state.ping_failures} pings missed")

        self.manager.xrl.send(xrl, completion,
                              deadline=self.policy.ping_timeout)

    # -- restarting -----------------------------------------------------------
    def _backoff(self, attempts: int) -> float:
        policy = self.policy
        base = min(policy.backoff_max,
                   policy.backoff_initial * policy.backoff_multiplier
                   ** max(0, attempts))
        if policy.jitter <= 0:
            return base
        return base * (1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0))

    def _schedule_restart(self, state: _ModuleState, reason: str) -> None:
        now = self.loop.now()
        window_start = now - self.policy.storm_window
        state.restart_times = [t for t in state.restart_times
                               if t > window_start]
        if len(state.restart_times) >= self.policy.storm_budget:
            self._give_up(state, f"restart storm: "
                          f"{len(state.restart_times)} restarts in "
                          f"{self.policy.storm_window}s ({reason})")
            return
        state.status = RESTARTING
        state.last_error = reason
        if state.stable_timer is not None:
            state.stable_timer.cancel()
            state.stable_timer = None
        delay = self._backoff(state.attempts)
        state.attempts += 1
        state.restart_timer = self.loop.call_later(
            delay, lambda: self._do_restart(state),
            name=f"supervisor-restart-{state.name}")

    def _do_restart(self, state: _ModuleState) -> None:
        if not self._running or state.status == FAILED:
            return
        state.restart_timer = None
        # Dependencies first: a protocol restarted before its RIB would
        # come up, fail to register its tables, and crash again.
        for dep_name in state.depends_on:
            dep = self._modules.get(dep_name)
            if dep is None:
                continue
            if dep.status == FAILED:
                self._give_up(state, f"dependency {dep_name!r} failed")
                return
            if dep.status != UP:
                if dep.restart_timer is not None:
                    dep.restart_timer.cancel()
                    dep.restart_timer = None
                self._do_restart(dep)
                if dep.status != UP:
                    self._give_up(
                        state, f"dependency {dep_name!r} unrestartable")
                    return
        state.restart_times.append(self.loop.now())
        try:
            process = state.restart()
        except Exception as exc:  # factory/reapply blew up; try again later
            state.status = DOWN
            self._schedule_restart(state, f"restart raised: {exc}")
            return
        state.status = UP
        state.ping_failures = 0
        self.restarts += 1
        if self.policy.stable_after > 0:
            state.stable_timer = self.loop.call_later(
                self.policy.stable_after,
                lambda: self._mark_stable(state),
                name=f"supervisor-stable-{state.name}")
        if self.on_restarted is not None:
            self.on_restarted(state.name, process)

    def _mark_stable(self, state: _ModuleState) -> None:
        state.stable_timer = None
        if state.status == UP:
            state.attempts = 0

    def _give_up(self, state: _ModuleState, reason: str) -> None:
        state.status = FAILED
        state.last_error = reason
        state.cancel_timers()
        if self.on_gave_up is not None:
            self.on_gave_up(state.name, reason)
