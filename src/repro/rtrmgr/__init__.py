"""The Router Manager (paper §3).

    "The 'Router Manager' holds the router configuration and starts,
    configures, and stops protocols and other router functionality.  It
    hides the router's internal structure from the user, providing
    operators with unified management interfaces for examination and
    reconfiguration."

Pieces:

* :mod:`repro.rtrmgr.template` — template files define the configuration
  schema (the mechanism §8.3 says dynamically extends the CLI language);
* :mod:`repro.rtrmgr.config_tree` — the configuration tree, validated
  against the template, rendered/parsed in braces syntax;
* :mod:`repro.rtrmgr.rtrmgr` — module lifecycle and commit: config
  changes are diffed and applied to the managed processes via XRLs, and
  Finder ACLs are installed for each started module (paper §7);
* :mod:`repro.rtrmgr.supervisor` — the watchdog consuming Finder
  birth/death watches: pings modules, flushes a dead module's RIB
  routes, and restarts it with backoff and a storm budget (paper §3);
* :mod:`repro.rtrmgr.cli` — a small scriptable command-line interface.
"""

from repro.rtrmgr.cli import Cli
from repro.rtrmgr.config_tree import ConfigError, ConfigTree
from repro.rtrmgr.rtrmgr import RouterManager
from repro.rtrmgr.supervisor import Supervisor, SupervisorPolicy
from repro.rtrmgr.template import TemplateError, TemplateNode, parse_template

__all__ = [
    "Cli",
    "ConfigError",
    "ConfigTree",
    "RouterManager",
    "Supervisor",
    "SupervisorPolicy",
    "TemplateError",
    "TemplateNode",
    "parse_template",
]
