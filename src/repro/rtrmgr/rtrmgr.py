"""Router Manager: module lifecycle and configuration commit.

The Router Manager owns the candidate and committed configuration trees.
On commit it:

1. starts any modules (processes) the new configuration requires — each
   through a pluggable factory, so third-party protocols register here
   exactly like BGP and RIP do;
2. installs Finder ACLs for each started module (paper §7: "The Finder is
   configured with a set of XRLs that each process is allowed to call,
   and a set of targets that each process is allowed to communicate
   with");
3. diffs committed vs. candidate state per subsystem and drives the
   managed processes via XRLs;
4. on failure, rolls the candidate back to the committed tree.

"XORP centralizes all configuration information in the Router Manager,
so no XORP process needs to access the filesystem to load or save its
configuration."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.process import Host, XorpProcess
from repro.interfaces import COMMON_IDL, RTRMGR_IDL
from repro.net import IPv4
from repro.rtrmgr.config_tree import ConfigError, ConfigTree
from repro.rtrmgr.template import DEFAULT_TEMPLATE, parse_template
from repro.xrl import XrlArgs, XrlError
from repro.xrl.retry import RetryPolicy
from repro.xrl.xrl import Xrl

#: Finder ACLs installed per module class (target classes it may resolve)
MODULE_ACLS = {
    "bgp": {"rib", "bgp"},
    "rip": {"rib", "fea", "rip"},
    "ospf": {"rib", "fea"},
    "static_routes": {"rib"},
    "pim": {"rib", "fea", "mld6igmp"},
    "mld6igmp": {"pim"},
}


class CommitError(RuntimeError):
    """A commit failed and was rolled back."""


class RouterManager(XorpProcess):
    process_name = "rtrmgr"

    def __init__(self, host: Host, *, template_text: Optional[str] = None,
                 module_retry: Optional["RetryPolicy"] = None):
        super().__init__(host)
        #: retry policy handed to modules for their idempotent route streams
        self.module_retry = module_retry
        self.template = parse_template(
            template_text if template_text is not None else DEFAULT_TEMPLATE)
        self.config = ConfigTree(self.template)      # candidate
        self.committed = ConfigTree(self.template)   # running
        self.xrl = self.create_router("rtrmgr", singleton=True)
        self.xrl.bind(RTRMGR_IDL, self)
        self.xrl.bind(COMMON_IDL, self)
        self.modules: Dict[str, XorpProcess] = {}
        self.module_factories: Dict[str, Callable] = {
            "bgp": self._make_bgp,
            "rip": self._make_rip,
            "static_routes": self._make_static,
            "ospf": self._make_ospf,
            "pim": self._make_pim,
            "mld6igmp": self._make_mld6igmp,
        }
        #: hook fired after a BGP peer is configured: (peer_addr, handler)
        self.on_peer_added: Optional[Callable] = None
        self.commit_count = 0
        self.metrics.gauge("modules", lambda: len(self.modules))
        self.metrics.gauge("commits", lambda: self.commit_count)

    # -- candidate configuration editing ------------------------------------
    def set(self, path_text: str, value: Any = None) -> None:
        """``set("protocols bgp local-as", 65001)``-style editing."""
        self.config.set(path_text.split(), value)

    def delete(self, path_text: str) -> None:
        self.config.delete(path_text.split())

    def load(self, config_text: str) -> None:
        """Replace the candidate with parsed braces-syntax text."""
        self.config = ConfigTree(self.template)
        self.config.load(config_text)

    def show(self) -> str:
        return self.committed.render()

    def show_candidate(self) -> str:
        return self.config.render()

    # -- module factories -------------------------------------------------------
    def _make_bgp(self) -> XorpProcess:
        from repro.bgp import BgpProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        local_as = self.config.get_value(["protocols", "bgp", "local-as"])
        if local_as is None:
            raise CommitError("protocols bgp local-as must be set")
        bgp_id = self.config.get_value(["protocols", "bgp", "bgp-id"],
                                       IPv4("127.0.0.1"))
        return BgpProcess(self.host, local_as=int(local_as),
                          bgp_id=IPv4(bgp_id), retry_policy=self.module_retry)

    def _make_rip(self) -> XorpProcess:
        from repro.rip import RipProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        return RipProcess(self.host)

    def _make_ospf(self) -> XorpProcess:
        from repro.ospf import OspfProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        router_id = self.config.get_value(["protocols", "ospf", "router-id"])
        if router_id is None:
            raise CommitError("protocols ospf router-id must be set")
        return OspfProcess(self.host, IPv4(router_id))

    def _make_static(self) -> XorpProcess:
        from repro.staticroutes import StaticRoutesProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        return StaticRoutesProcess(self.host)

    def _make_pim(self) -> XorpProcess:
        from repro.pim import PimProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        return PimProcess(self.host)

    def _make_mld6igmp(self) -> XorpProcess:
        from repro.mld6igmp import Mld6igmpProcess  # repro: allow[ISO001] composition root: launches the module, never touches its state

        return Mld6igmpProcess(self.host)

    def register_module_factory(self, name: str, factory: Callable, *,
                                allowed_targets: Optional[set] = None) -> None:
        """Extension point: third-party protocols plug in here."""
        self.module_factories[name] = factory
        if allowed_targets is not None:
            MODULE_ACLS[name] = set(allowed_targets)

    # -- commit -------------------------------------------------------------
    def _required_modules(self) -> List[str]:
        required = []
        if self.config.exists(["protocols", "bgp"]):
            required.append("bgp")
        if self.config.exists(["protocols", "rip"]):
            required.append("rip")
        if self.config.exists(["protocols", "ospf"]):
            required.append("ospf")
        if self.config.exists(["protocols", "static"]):
            required.append("static_routes")
        if self.config.exists(["protocols", "pim"]):
            required.extend(["mld6igmp", "pim"])
        return required

    def _start_module(self, name: str) -> XorpProcess:
        factory = self.module_factories.get(name)
        if factory is None:
            raise CommitError(f"no module factory for {name!r}")
        process = factory()
        self.modules[name] = process
        acl = MODULE_ACLS.get(name)
        if acl is not None:
            for router in process.routers:
                self.host.finder.set_acl(router.instance_name,
                                         allowed_targets=set(acl))
        return process

    #: applier replayed per module by :meth:`reapply_module`
    _MODULE_APPLIERS = {
        "bgp": "_apply_bgp",
        "static_routes": "_apply_static",
        "rip": "_apply_rip",
        "ospf": "_apply_ospf",
        "pim": "_apply_pim",
        "mld6igmp": "_apply_pim",
    }

    def restart_module(self, name: str) -> XorpProcess:
        """Restart a dead (or wedged) module and replay its configuration.

        The supervisor's entry point: tears down whatever is left of the
        old instance, starts a fresh one through the normal factory, and
        re-drives the committed configuration at it — the new process has
        empty state, so the applier's diff re-adds every peer, route, and
        policy it is supposed to carry.
        """
        old = self.modules.pop(name, None)
        if old is not None and old.running:
            old.shutdown()
        self._start_module(name)
        self.reapply_module(name)
        return self.modules[name]

    def reapply_module(self, name: str) -> None:
        """Re-drive committed configuration at one (restarted) module."""
        applier_name = self._MODULE_APPLIERS.get(name)
        if applier_name is not None:
            getattr(self, applier_name)()

    def commit(self) -> None:
        """Apply the candidate configuration; roll back on failure."""
        try:
            for name in self._required_modules():
                if name not in self.modules:
                    self._start_module(name)
            self._apply_interfaces()
            self._apply_policy()
            self._apply_bgp()
            self._apply_static()
            self._apply_rip()
            self._apply_ospf()
            self._apply_pim()
        except (XrlError, CommitError, ConfigError) as exc:
            # Roll back the candidate to the running configuration.
            rollback = ConfigTree(self.template)
            rendered = self.committed.render()
            if rendered.strip():
                rollback.load(rendered)
            self.config = rollback
            raise CommitError(f"commit failed, rolled back: {exc}") from exc
        # Promote candidate -> committed (fresh copy keeps them detached).
        promoted = ConfigTree(self.template)
        rendered = self.config.render()
        if rendered.strip():
            promoted.load(rendered)
        self.committed = promoted
        self.commit_count += 1

    def _call(self, target: str, interface: str, version: str, method: str,
              args: XrlArgs) -> XrlArgs:
        error, result = self.xrl.send_sync(
            Xrl(target, interface, version, method, args), deadline=30)
        if not error.is_okay:
            raise CommitError(f"{target}/{method}: {error}")
        return result

    # -- per-subsystem appliers ------------------------------------------------
    def _apply_interfaces(self) -> None:
        fea = self.host.processes.get("fea")
        if fea is None:
            return
        for node in self.config.tag_instances(["interfaces", "interface"]):
            ifname = node.tag_value
            base = ["interfaces", "interface", str(ifname)]
            addr = self.config.get_value(base + ["address"])
            if fea.ifmgr.find(str(ifname)) is None and addr is not None:
                prefix_len = int(self.config.get_value(
                    base + ["prefix-length"], 24))
                fea.ifmgr.create(str(ifname), addr, prefix_len)
            enabled = self.config.get_value(base + ["enabled"], True)
            interface = fea.ifmgr.find(str(ifname))
            if interface is not None:
                interface.enabled = bool(enabled)

    def _policy_source(self, name: str) -> Optional[str]:
        if self.config.exists(["policy", "statement", name]):
            return self.config.get_value(
                ["policy", "statement", name, "source"])
        return None

    def _apply_policy(self) -> None:
        pass  # sources are pulled on demand by _apply_bgp

    def _apply_bgp(self) -> None:
        if "bgp" not in self.modules:
            return
        bgp = self.modules["bgp"]
        # Policies first: they affect routes from new peers.
        for direction, filter_id in (("import-policy", 1), ("export-policy", 4)):
            name = self.config.get_value(["protocols", "bgp", direction])
            if name is not None:
                source = self._policy_source(str(name))
                if source is None:
                    raise CommitError(f"policy statement {name!r} not defined")
                args = (XrlArgs().add_u32("filter_id", filter_id)
                        .add_txt("policy_source", source))
                self._call("bgp", "policy", "0.1", "configure_filter", args)
        wanted = {}
        for node in self.config.tag_instances(["protocols", "bgp", "peer"]):
            addr = node.tag_value
            base = ["protocols", "bgp", "peer", str(addr)]
            peer_as = self.config.get_value(base + ["as"])
            local_ip = self.config.get_value(base + ["local-ip"])
            holdtime = int(self.config.get_value(base + ["holdtime"], 90))
            if peer_as is None or local_ip is None:
                raise CommitError(
                    f"peer {addr}: 'as' and 'local-ip' are mandatory")
            wanted[str(addr)] = (addr, int(peer_as), local_ip, holdtime)
        existing = set(bgp.peers)
        for peer_id in existing - set(wanted):
            args = XrlArgs().add_ipv4("peer", IPv4(peer_id))
            self._call("bgp", "bgp", "1.0", "delete_peer", args)
        for peer_id, (addr, peer_as, local_ip, holdtime) in wanted.items():
            if peer_id in existing:
                continue
            args = XrlArgs()
            args.add_ipv4("peer", addr)
            from repro.xrl.types import XrlAtom, XrlAtomType

            args.add(XrlAtom("as", XrlAtomType.U32, peer_as))
            args.add_ipv4("next_hop", local_ip)
            args.add_u32("holdtime", holdtime)
            self._call("bgp", "bgp", "1.0", "add_peer", args)
            if self.on_peer_added is not None:
                self.on_peer_added(peer_id, bgp.peers[peer_id])

    def _apply_static(self) -> None:
        if "static_routes" not in self.modules:
            return
        static = self.modules["static_routes"]
        wanted: Dict[str, Tuple] = {}
        for node in self.config.tag_instances(["protocols", "static", "route"]):
            net = node.tag_value
            base = ["protocols", "static", "route", str(net)]
            nexthop = self.config.get_value(base + ["next-hop"])
            if nexthop is None:
                raise CommitError(f"static route {net}: next-hop is mandatory")
            metric = int(self.config.get_value(base + ["metric"], 1))
            wanted[str(net)] = (net, nexthop, metric)
        existing = {str(net) for net in static.routes}
        for net_text in existing - set(wanted):
            args = XrlArgs().add_ipv4net("net", net_text)
            self._call("static_routes", "static_routes", "0.1",
                       "delete_route4", args)
        for net_text, (net, nexthop, metric) in wanted.items():
            current = static.routes.get(net)
            if current == (nexthop, metric):
                continue
            args = (XrlArgs().add_ipv4net("net", net)
                    .add_ipv4("nexthop", nexthop).add_u32("metric", metric))
            self._call("static_routes", "static_routes", "0.1",
                       "add_route4", args)

    def _apply_rip(self) -> None:
        if "rip" not in self.modules:
            return
        rip = self.modules["rip"]
        fea = self.host.processes.get("fea")
        wanted = {}
        for node in self.config.tag_instances(["protocols", "rip", "interface"]):
            ifname = str(node.tag_value)
            cost = int(self.config.get_value(
                ["protocols", "rip", "interface", ifname, "cost"], 1))
            wanted[ifname] = cost
        for ifname in set(rip.ports) - set(wanted):
            args = (XrlArgs().add_txt("ifname", ifname)
                    .add_ipv4("addr", rip.ports[ifname].addr))
            self._call("rip", "rip", "1.0", "remove_rip_address", args)
        for ifname, cost in wanted.items():
            if ifname not in rip.ports:
                if fea is None or fea.ifmgr.find(ifname) is None:
                    raise CommitError(f"rip interface {ifname!r} does not exist")
                addr = fea.ifmgr.get(ifname).addr
                args = XrlArgs().add_txt("ifname", ifname).add_ipv4("addr", addr)
                self._call("rip", "rip", "1.0", "add_rip_address", args)
            if rip.ports[ifname].cost != cost:
                args = XrlArgs().add_txt("ifname", ifname).add_u32("cost", cost)
                self._call("rip", "rip", "1.0", "set_cost", args)
        for node in self.config.tag_instances(
                ["protocols", "rip", "redistribute"]):
            args = (XrlArgs().add_txt("target", "rip")
                    .add_txt("from_protocol", str(node.tag_value)))
            self._call("rib", "rib", "1.0", "redist_enable4", args)

    def _apply_ospf(self) -> None:
        if "ospf" not in self.modules:
            return
        ospf = self.modules["ospf"]
        fea = self.host.processes.get("fea")
        for node in self.config.tag_instances(
                ["protocols", "ospf", "interface"]):
            ifname = str(node.tag_value)
            if ifname in ospf.interfaces:
                continue
            if fea is None or fea.ifmgr.find(ifname) is None:
                raise CommitError(f"ospf interface {ifname!r} does not exist")
            interface = fea.ifmgr.get(ifname)
            cost = int(self.config.get_value(
                ["protocols", "ospf", "interface", ifname, "cost"], 1))
            args = (XrlArgs().add_txt("ifname", ifname)
                    .add_ipv4("addr", interface.addr)
                    .add_u32("prefix_len", interface.prefix_len)
                    .add_u32("cost", cost))
            self._call("ospf", "ospf", "0.1", "add_ospf_interface", args)

    def _apply_pim(self) -> None:
        if "pim" not in self.modules:
            return
        for node in self.config.tag_instances(["protocols", "pim", "rp"]):
            prefix = node.tag_value
            rp_addr = self.config.get_value(
                ["protocols", "pim", "rp", str(prefix), "address"])
            if rp_addr is None:
                raise CommitError(f"pim rp {prefix}: address is mandatory")
            args = (XrlArgs().add_ipv4net("group_prefix", prefix)
                    .add_ipv4("rp", rp_addr))
            self._call("pim", "pim", "0.1", "set_rp", args)

    # -- rtrmgr/1.0 -----------------------------------------------------------
    def xrl_get_config(self) -> dict:
        return {"config": self.committed.render()}

    def xrl_get_modules(self) -> dict:
        return {"modules": ",".join(sorted(self.modules))}

    # -- common/0.1 ------------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-rtrmgr/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)
