"""Real OS-process deployment: rtrmgr spawns children with ``Popen``.

This is the deployment the paper actually describes (§6.1): the Router
Manager forks one OS process per routing module, each process connects
back to the Finder over TCP, and XRLs between modules cross real process
boundaries.  The :class:`SpawnManager` below is the parent half:

* it owns the real Finder plus a :class:`~repro.xrl.transport.finderd.FinderServer`
  so children can reach it over a socket;
* :meth:`spawn_module` launches ``python -m repro.<module>`` children and
  blocks until their components register;
* the stock :class:`~repro.rtrmgr.supervisor.Supervisor` runs unchanged
  on top: a child's socket death deregisters its components, which fires
  the DEATH watch, which schedules a dependency-ordered, jitter-backed
  restart — except now "restart" means ``SIGKILL`` the old OS process
  and fork a new one;
* :meth:`provision` records every configuration XRL it pushes, and
  :meth:`restart_module` replays them into the fresh child, so restarted
  modules reconverge to the pre-crash configuration (the resync
  contract).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core.process import Host, XorpProcess
from repro.eventloop import EventLoop, SystemClock
from repro.rtrmgr.supervisor import Supervisor, SupervisorPolicy
from repro.xrl import XrlError, XrlErrorCode
from repro.xrl.transport.finderd import FinderServer
from repro.xrl.transport.tcp import TcpFamily
from repro.xrl.xrl import Xrl


class SpawnedModule:
    """Book-keeping for one child OS process."""

    __slots__ = ("name", "module", "args", "class_name", "provision", "popen")

    def __init__(self, name: str, module: str, args: Sequence[str],
                 class_name: str):
        self.name = name
        self.module = module
        self.args = list(args)
        self.class_name = class_name
        #: configuration XRLs replayed into every respawn, in push order
        self.provision: List[Xrl] = []
        self.popen: Optional[subprocess.Popen] = None

    @property
    def pid(self) -> Optional[int]:
        return self.popen.pid if self.popen is not None else None

    @property
    def alive(self) -> bool:
        return self.popen is not None and self.popen.poll() is None


class SpawnManager(XorpProcess):
    """The Router Manager for real multi-process deployment."""

    process_name = "rtrmgr"

    def __init__(self, host: Optional[Host] = None, *,
                 policy: Optional[SupervisorPolicy] = None,
                 codec: Optional[str] = None,
                 python: str = sys.executable):
        if host is None:
            loop = EventLoop(SystemClock())
            host = Host(loop, extra_families=[TcpFamily(codec=codec)])
        super().__init__(host)
        self._codec = codec
        self._python = python
        self.xrl = self.create_router("rtrmgr", singleton=True)
        self.finder_server = FinderServer(self.host.finder, self.loop)
        self.modules: Dict[str, SpawnedModule] = {}
        self.supervisor = Supervisor(self, policy)
        self.supervisor.on_restarted = self._note_restart
        self.restart_log: List[str] = []

    def _note_restart(self, name: str, shell) -> None:
        self.restart_log.append(name)

    # -- spawning -----------------------------------------------------------
    def _child_env(self) -> dict:
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        if self._codec is not None:
            env["REPRO_XRL_CODEC"] = self._codec
        return env

    def spawn_module(self, name: str, module: Optional[str] = None, *,
                     args: Sequence[str] = (),
                     class_name: Optional[str] = None,
                     supervise: bool = True,
                     wait_timeout: float = 30.0) -> SpawnedModule:
        """Fork ``python -m <module>`` and wait until it registers."""
        if name in self.modules:
            raise ValueError(f"module {name!r} already spawned")
        shell = SpawnedModule(name, module if module is not None
                              else f"repro.{name}", args,
                              class_name if class_name is not None else name)
        self.modules[name] = shell
        self._launch(shell, wait_timeout)
        if supervise:
            self.supervisor.add_module(
                name, class_name=shell.class_name,
                restart=lambda: self.restart_module(name))
        return shell

    def _launch(self, shell: SpawnedModule, wait_timeout: float) -> None:
        argv = [self._python, "-m", shell.module,
                "--finder", self.finder_server.address]
        if self._codec is not None:
            argv += ["--codec", self._codec]
        argv += shell.args
        shell.popen = subprocess.Popen(argv, env=self._child_env())
        if not self._pump_until(
                lambda: self.host.finder.known_target(shell.class_name),
                wait_timeout):
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"module {shell.name!r} (pid {shell.pid}) did not register "
                f"target {shell.class_name!r} within {wait_timeout}s")

    def _pump_until(self, predicate, timeout: float) -> bool:
        """Service Finder/XRL I/O until *predicate* holds.

        Uses :meth:`EventLoop.poll_io` — never timers or deferred
        callbacks — so it is safe inside the Supervisor's restart timer.
        """
        # repro: allow[DET001] real OS children: registration waits are wall-clock
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() >= deadline:  # repro: allow[DET001]
                return False
            self.loop.poll_io(0.05)
        return True

    # -- provisioning ---------------------------------------------------------
    def provision(self, name: str, xrl: Xrl, *, deadline: float = 10.0,
                  record: bool = True):
        """Push a configuration XRL; record it for replay on respawn."""
        shell = self.modules[name]
        error, args = self.xrl.send_sync(xrl, deadline=deadline)
        if not error.is_okay:
            raise XrlError(error.code,
                           f"provisioning {name!r} failed: {error.note}")
        if record:
            shell.provision.append(xrl)
        return args

    # -- restart (the Supervisor's restart callable) --------------------------
    def restart_module(self, name: str) -> SpawnedModule:
        shell = self.modules[name]
        if shell.popen is not None:
            if shell.popen.poll() is None:
                shell.popen.kill()
            shell.popen.wait()
        # The dead child's Finder connection must drain before respawn,
        # or the stale registration would satisfy the wait below.
        self._pump_until(
            lambda: not self.host.finder.known_target(shell.class_name), 10.0)
        self._launch(shell, wait_timeout=30.0)
        for xrl in shell.provision:
            error, __ = self.xrl.send_sync(xrl, deadline=10.0)
            if not error.is_okay:
                raise XrlError(
                    error.code,
                    f"replaying {xrl.method!r} into {name!r}: {error.note}")
        return shell

    # -- teardown -------------------------------------------------------------
    def shutdown(self) -> None:
        if not self.running:
            return
        self.supervisor.stop()
        for shell in self.modules.values():
            if shell.popen is None:
                continue
            if shell.popen.poll() is None:
                shell.popen.terminate()
        # repro: allow[DET001] reaping real children is inherently wall-clock
        deadline = time.monotonic() + 5.0
        for shell in self.modules.values():
            if shell.popen is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())  # repro: allow[DET001]
            try:
                shell.popen.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shell.popen.kill()
                shell.popen.wait()
        self.finder_server.close()
        super().shutdown()
