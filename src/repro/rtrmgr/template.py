"""Configuration template trees.

Template files declare what the configuration language accepts — node
names, value types, defaults, and *tag nodes* (multi-instance nodes keyed
by a value, like ``peer 10.0.0.2``).  Syntax::

    protocols {
        bgp {
            local-as: u32;
            bgp-id: ipv4;
            peer @: ipv4 {
                as: u32;
                holdtime: u32 = 90;
                local-ip: ipv4;
            }
        }
    }

``@`` marks a tag node: the configuration may contain many instances,
each keyed by a value of the declared type.  Value types are the XRL atom
types, so template validation reuses the XRL type checks.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.xrl.error import XrlError
from repro.xrl.types import XrlAtom, XrlAtomType


class TemplateError(ValueError):
    """Malformed template text or a validation failure."""


class TemplateNode:
    """One node in the template tree."""

    def __init__(self, name: str, *, value_type: Optional[XrlAtomType] = None,
                 is_tag: bool = False, default: Any = None):
        self.name = name
        self.value_type = value_type
        self.is_tag = is_tag
        self.default = default
        self.children: Dict[str, "TemplateNode"] = {}

    def add_child(self, child: "TemplateNode") -> "TemplateNode":
        if child.name in self.children:
            raise TemplateError(f"duplicate template node {child.name!r}")
        self.children[child.name] = child
        return child

    def child(self, name: str) -> "TemplateNode":
        node = self.children.get(name)
        if node is None:
            raise TemplateError(
                f"configuration node {name!r} is not allowed under "
                f"{self.name!r}"
            )
        return node

    @property
    def is_leaf(self) -> bool:
        return not self.children and not self.is_tag

    def validate_value(self, value: Any) -> Any:
        """Coerce *value* to this node's declared type (TemplateError)."""
        if self.value_type is None:
            raise TemplateError(f"node {self.name!r} takes no value")
        try:
            return XrlAtom("v", self.value_type, value).value
        except XrlError as exc:
            raise TemplateError(
                f"bad value for {self.name!r}: {exc.note}"
            ) from exc

    def __repr__(self) -> str:
        kind = "tag" if self.is_tag else ("leaf" if self.is_leaf else "node")
        return f"<TemplateNode {self.name!r} {kind}>"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<punct>[{}:;=@])
  | (?P<string>"[^"]*")
  | (?P<word>[^\s{}:;=@"#]+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TemplateError(
                f"bad template character {text[position]!r} at {position}"
            )
        if match.lastgroup not in ("ws", "comment"):
            tokens.append(match.group())
        position = match.end()
    return tokens


def parse_template(text: str) -> TemplateNode:
    """Parse template text; returns the (unnamed) root node."""
    tokens = _tokenize(text)
    root = TemplateNode("")
    index = _parse_children(tokens, 0, root, top_level=True)
    if index != len(tokens):
        raise TemplateError(f"trailing template tokens: {tokens[index:][:5]}")
    if not root.children:
        raise TemplateError("empty template")
    return root


def _parse_children(tokens: List[str], index: int, parent: TemplateNode,
                    top_level: bool = False) -> int:
    while index < len(tokens):
        token = tokens[index]
        if token == "}":
            if top_level:
                raise TemplateError("unbalanced '}'")
            return index + 1
        name = token
        index += 1
        is_tag = False
        value_type: Optional[XrlAtomType] = None
        default = None
        if index < len(tokens) and tokens[index] == "@":
            is_tag = True
            index += 1
        if index < len(tokens) and tokens[index] == ":":
            index += 1
            if index >= len(tokens):
                raise TemplateError(f"missing type after {name!r}")
            try:
                value_type = XrlAtomType(tokens[index])
            except ValueError as exc:
                raise TemplateError(
                    f"unknown type {tokens[index]!r} for {name!r}"
                ) from exc
            index += 1
            if index < len(tokens) and tokens[index] == "=":
                index += 1
                if index >= len(tokens):
                    raise TemplateError(f"missing default for {name!r}")
                raw = tokens[index]
                default = raw[1:-1] if raw.startswith('"') else raw
                index += 1
        node = TemplateNode(name, value_type=value_type, is_tag=is_tag,
                            default=default)
        if index < len(tokens) and tokens[index] == "{":
            parent.add_child(node)
            index = _parse_children(tokens, index + 1, node)
        elif index < len(tokens) and tokens[index] == ";":
            parent.add_child(node)
            index += 1
        else:
            got = tokens[index] if index < len(tokens) else "<eof>"
            raise TemplateError(
                f"expected '{{' or ';' after {name!r}, got {got!r}"
            )
    if not top_level:
        raise TemplateError("missing '}'")
    return index


#: The stock template shipped with the router (extensible at runtime —
#: this is how new protocols extend the CLI language, paper §8.3).
DEFAULT_TEMPLATE = """
interfaces {
    interface @ : txt {
        address: ipv4;
        prefix-length: u32 = 24;
        enabled: bool = true;
    }
}
protocols {
    bgp {
        local-as: u32;
        bgp-id: ipv4;
        import-policy: txt;
        export-policy: txt;
        peer @ : ipv4 {
            as: u32;
            holdtime: u32 = 90;
            local-ip: ipv4;
            damping: bool = false;
        }
    }
    rip {
        interface @ : txt {
            cost: u32 = 1;
        }
        redistribute @ : txt { }
    }
    ospf {
        router-id: ipv4;
        interface @ : txt {
            cost: u32 = 1;
        }
    }
    static {
        route @ : ipv4net {
            next-hop: ipv4;
            metric: u32 = 1;
        }
    }
    pim {
        rp @ : ipv4net {
            address: ipv4;
        }
    }
}
policy {
    statement @ : txt {
        source: txt;
    }
}
"""
