"""A small scriptable CLI over the Router Manager.

Operational commands route through XRLs ("providing operators with
unified management interfaces"); configuration commands edit the
candidate tree until ``commit``.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List

from repro.rtrmgr.config_tree import ConfigError
from repro.rtrmgr.rtrmgr import CommitError, RouterManager
from repro.rtrmgr.template import TemplateError
from repro.xrl.xrl import Xrl


class Cli:
    """Execute command lines against a RouterManager; returns output text."""

    def __init__(self, rtrmgr: RouterManager):
        self.rtrmgr = rtrmgr
        self.history: List[str] = []
        #: operational "show" subcommands -> handler(args) -> str
        self.show_commands: Dict[str, Callable[[List[str]], str]] = {
            "configuration": lambda args: self.rtrmgr.show(),
            "candidate": lambda args: self.rtrmgr.show_candidate(),
            "modules": self._show_modules,
            "bgp": self._show_bgp,
            "rip": self._show_rip,
            "ospf": self._show_ospf,
            "route": self._show_route,
        }

    def execute(self, line: str) -> str:
        """Run one command line; return its output (or error text)."""
        self.history.append(line)
        try:
            words = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        if not words:
            return ""
        command, args = words[0], words[1:]
        try:
            if command == "set":
                if len(args) < 2:
                    return "error: set <path...> <value>"
                self.rtrmgr.set(" ".join(args[:-1]), args[-1])
                return "OK"
            if command == "create":
                self.rtrmgr.config.set(args)
                return "OK"
            if command == "delete":
                self.rtrmgr.delete(" ".join(args))
                return "OK"
            if command == "commit":
                self.rtrmgr.commit()
                return "Commit OK"
            if command == "show":
                return self._show(args)
            if command == "load":
                return "error: use Cli.load_text() for multi-line input"
            if command == "call":
                return self._call_xrl(args)
            if command == "help":
                return self._help()
        except (ConfigError, TemplateError, CommitError) as exc:
            return f"error: {exc}"
        return f"error: unknown command {command!r}"

    def run_interactive(self, input_fn=input, output_fn=print,
                        prompt: str = "xorpsh> ") -> None:
        """A minimal interactive shell (exit with 'exit'/'quit'/EOF)."""
        while True:
            try:
                line = input_fn(prompt)
            except EOFError:
                return
            if line.strip() in ("exit", "quit"):
                return
            output = self.execute(line)
            if output:
                output_fn(output)

    def load_text(self, config_text: str) -> str:
        try:
            self.rtrmgr.load(config_text)
        except (ConfigError, TemplateError) as exc:
            return f"error: {exc}"
        return "OK"

    # -- show subcommands --------------------------------------------------
    def _show(self, args: List[str]) -> str:
        if not args:
            return self.rtrmgr.show()
        handler = self.show_commands.get(args[0])
        if handler is None:
            return f"error: unknown show command {args[0]!r}"
        return handler(args[1:])

    def _show_modules(self, args: List[str]) -> str:
        return "\n".join(sorted(self.rtrmgr.modules)) or "(none)"

    def _sync(self, target: str, interface: str, version: str, method: str):
        from repro.xrl import XrlArgs

        error, result = self.rtrmgr.xrl.send_sync(
            Xrl(target, interface, version, method, XrlArgs()), deadline=10)
        if not error.is_okay:
            raise CommitError(str(error))
        return result

    def _show_bgp(self, args: List[str]) -> str:
        bgp = self.rtrmgr.modules.get("bgp")
        if bgp is None:
            return "BGP is not running"
        if args and args[0] == "routes":
            return self._show_bgp_routes(bgp)
        result = self._sync("bgp", "bgp", "1.0", "get_peer_list")
        lines = [f"local AS: {bgp.local_as}", f"BGP ID: {bgp.bgp_id}"]
        for peer_id in filter(None, result.get_txt("peers").split(",")):
            handler = bgp.peers[peer_id]
            lines.append(
                f"peer {peer_id} AS {handler.config.peer_as} "
                f"state {handler.fsm.state.value} "
                f"prefixes {handler.peer_in.route_count}")
        lines.append(f"best routes: {bgp.decision.route_count}")
        return "\n".join(lines)

    def _show_bgp_routes(self, bgp) -> str:
        lines = []
        for net, route in sorted(bgp.decision.winners.items(),
                                 key=lambda kv: kv[0].key()):
            attrs = route.attributes
            med = attrs.med if attrs.med is not None else "-"
            lines.append(
                f"{net} via {route.nexthop} from {route.peer_id} "
                f"localpref {attrs.local_pref} med {med} "
                f"as-path [{attrs.as_path}]")
        return "\n".join(lines) or "(no BGP routes)"

    def _show_rip(self, args: List[str]) -> str:
        rip = self.rtrmgr.modules.get("rip")
        if rip is None:
            return "RIP is not running"
        lines = []
        for ifname, port in sorted(rip.ports.items()):
            lines.append(f"interface {ifname} cost {port.cost} "
                         f"in {port.packets_in} out {port.packets_out}")
        lines.append(f"routes: {len(rip.routes)}")
        return "\n".join(lines)

    def _show_ospf(self, args: List[str]) -> str:
        ospf = self.rtrmgr.modules.get("ospf")
        if ospf is None:
            return "OSPF is not running"
        neighbors = self._sync("ospf", "ospf", "0.1", "get_neighbors")
        lsdb = self._sync("ospf", "ospf", "0.1", "get_lsdb")
        lines = [f"router id: {ospf.router_id}",
                 f"neighbors: {neighbors.get_txt('neighbors') or '(none)'}",
                 f"lsdb: {lsdb.get_txt('lsdb') or '(empty)'}",
                 f"spf runs: {ospf.spf_runs}"]
        return "\n".join(lines)

    def _show_route(self, args: List[str]) -> str:
        fea = self.rtrmgr.host.processes.get("fea")
        if fea is None:
            return "no FEA"
        lines = []
        for net, entry in fea.fib4.entries():
            via = f"via {entry.nexthop}" if not entry.nexthop.is_zero() \
                else "connected"
            dev = f" dev {entry.ifname}" if entry.ifname else ""
            lines.append(f"{net} {via}{dev}")
        return "\n".join(lines) or "(empty)"

    def _call_xrl(self, args: List[str]) -> str:
        """``call <xrl-text>`` — the call_xrl scripting facility."""
        from repro.xrl.call_xrl import call_xrl

        if not args:
            return "error: call <xrl>"
        error, text = call_xrl(self.rtrmgr.xrl, args[0])
        if not error.is_okay:
            return f"error: {error}"
        return text or "OK"

    def _help(self) -> str:
        return "\n".join([
            "set <path...> <value>    edit the candidate configuration",
            "create <path...>         create a non-leaf config node",
            "delete <path...>         remove configuration",
            "commit                   apply the candidate configuration",
            "show [configuration|candidate|modules|bgp|rip|route]",
            "call <xrl>               invoke an XRL (textual form)",
        ])
