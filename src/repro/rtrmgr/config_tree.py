"""The configuration tree, validated against a template tree."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.rtrmgr.template import TemplateError, TemplateNode


class ConfigError(ValueError):
    """Invalid configuration operation."""


class ConfigNode:
    """One configured node.

    Tag-node instances store their key in ``tag_value``; leaves store
    their value in ``value``.
    """

    def __init__(self, template: TemplateNode, *, tag_value: Any = None):
        self.template = template
        self.tag_value = tag_value
        self.value: Any = None
        #: plain children by name; tag children by (name, key-text)
        self.children: Dict[Any, "ConfigNode"] = {}

    @property
    def name(self) -> str:
        return self.template.name

    def child_key(self, name: str, tag_value: Any = None):
        return (name, str(tag_value)) if tag_value is not None else name

    def __repr__(self) -> str:
        tag = f" {self.tag_value}" if self.tag_value is not None else ""
        return f"<ConfigNode {self.name}{tag}>"


class ConfigTree:
    """A validated configuration tree with set/delete/render/parse/diff."""

    def __init__(self, template: TemplateNode):
        self.template = template
        self.root = ConfigNode(template)

    # -- path navigation ------------------------------------------------------
    def _descend(self, path: List[str], create: bool) -> ConfigNode:
        """Walk *path*, where tag nodes consume the following segment as key."""
        node = self.root
        index = 0
        while index < len(path):
            name = path[index]
            template = node.template.child(name)
            index += 1
            if template.is_tag:
                if index >= len(path):
                    raise ConfigError(
                        f"{name!r} needs an identifier (e.g. '{name} <value>')"
                    )
                raw_key = path[index]
                index += 1
                key_value = template.validate_value(raw_key)
                key = node.child_key(name, key_value)
                child = node.children.get(key)
                if child is None:
                    if not create:
                        raise ConfigError(f"no such node: {name} {raw_key}")
                    child = ConfigNode(template, tag_value=key_value)
                    node.children[key] = child
            else:
                child = node.children.get(name)
                if child is None:
                    if not create:
                        raise ConfigError(f"no such node: {name}")
                    child = ConfigNode(template)
                    node.children[name] = child
            node = child
        return node

    def set(self, path: List[str], value: Any = None) -> ConfigNode:
        """Create/modify the node at *path*; leaves take *value*."""
        node = self._descend(path, create=True)
        if node.template.value_type is not None and not node.template.is_tag:
            if value is None:
                raise ConfigError(f"{node.name!r} requires a value")
            node.value = node.template.validate_value(value)
        elif value is not None:
            raise ConfigError(f"{node.name!r} does not take a value")
        return node

    def delete(self, path: List[str]) -> None:
        if not path:
            raise ConfigError("cannot delete the root")
        target = self._descend(path, create=False)
        # Find the parent by walking again minus the consumed segments.
        parent, key = self._locate_parent(path)
        del parent.children[key]

    def _locate_parent(self, path: List[str]) -> Tuple[ConfigNode, Any]:
        node = self.root
        index = 0
        last_parent: Optional[ConfigNode] = None
        last_key: Any = None
        while index < len(path):
            name = path[index]
            template = node.template.child(name)
            index += 1
            if template.is_tag:
                raw_key = path[index]
                index += 1
                key = node.child_key(name, template.validate_value(raw_key))
            else:
                key = name
            if key not in node.children:
                raise ConfigError(f"no such node: {' '.join(path)}")
            last_parent, last_key = node, key
            node = node.children[key]
        return last_parent, last_key

    def get(self, path: List[str]) -> ConfigNode:
        return self._descend(path, create=False)

    def get_value(self, path: List[str], default: Any = None) -> Any:
        """Leaf value at *path*, the template default, or *default*."""
        try:
            node = self._descend(path, create=False)
            return node.value
        except (ConfigError, TemplateError):
            pass
        # Fall back to the template default for the final segment.
        try:
            template = self._template_at(path)
        except TemplateError:
            return default
        if template.default is not None:
            return template.validate_value(template.default)
        return default

    def _template_at(self, path: List[str]) -> TemplateNode:
        template = self.template
        index = 0
        while index < len(path):
            template = template.child(path[index])
            index += 1
            if template.is_tag:
                index += 1  # skip the key segment
        return template

    def exists(self, path: List[str]) -> bool:
        try:
            self._descend(path, create=False)
            return True
        except (ConfigError, TemplateError):
            return False

    # -- iteration ---------------------------------------------------------
    def walk(self) -> Iterator[Tuple[Tuple[str, ...], ConfigNode]]:
        """Yield (path, node) for every configured node, depth-first."""

        def recurse(node: ConfigNode, path: Tuple[str, ...]):
            for key, child in sorted(node.children.items(),
                                     key=lambda kv: str(kv[0])):
                if isinstance(key, tuple):
                    child_path = path + (key[0], key[1])
                else:
                    child_path = path + (key,)
                yield child_path, child
                yield from recurse(child, child_path)

        yield from recurse(self.root, ())

    def tag_instances(self, path: List[str]) -> List[ConfigNode]:
        """All instances of the tag node named by the last path segment.

        An absent parent subtree yields an empty list rather than an
        error, so appliers can probe optional configuration.
        """
        try:
            parent = self._descend(path[:-1], create=False) if len(path) > 1 \
                else self.root
        except (ConfigError, TemplateError):
            return []
        name = path[-1]
        out = []
        for key, child in sorted(parent.children.items(),
                                 key=lambda kv: str(kv[0])):
            if isinstance(key, tuple) and key[0] == name:
                out.append(child)
        return out

    # -- rendering / parsing ---------------------------------------------------
    def render(self) -> str:
        """Render in braces syntax (the format ``show`` prints)."""
        lines: List[str] = []

        def recurse(node: ConfigNode, indent: int):
            pad = "    " * indent
            for key, child in sorted(node.children.items(),
                                     key=lambda kv: str(kv[0])):
                label = child.name
                if child.tag_value is not None:
                    label += f" {child.tag_value}"
                if child.children or child.template.is_tag or (
                        child.template.value_type is None):
                    lines.append(f"{pad}{label} {{")
                    if child.value is not None:
                        lines.append(f"{pad}    value: {child.value}")
                    recurse(child, indent + 1)
                    lines.append(f"{pad}}}")
                else:
                    lines.append(f"{pad}{label}: {child.value}")

        recurse(self.root, 0)
        return "\n".join(lines) + ("\n" if lines else "")

    def load(self, text: str) -> None:
        """Parse braces-syntax configuration text into this tree."""
        from repro.rtrmgr.template import _tokenize

        tokens = _tokenize(text)
        self._load_block(tokens, 0, [])

    def _load_block(self, tokens: List[str], index: int,
                    path: List[str]) -> int:
        while index < len(tokens):
            token = tokens[index]
            if token == "}":
                return index + 1
            segments = [token]
            index += 1
            # Optional tag key before ':' or '{'
            while index < len(tokens) and tokens[index] not in ("{", ":", ";",
                                                                "}"):
                raw = tokens[index]
                segments.append(raw[1:-1] if raw.startswith('"') else raw)
                index += 1
            if index >= len(tokens):
                raise ConfigError("unexpected end of configuration text")
            if tokens[index] == ":":
                index += 1
                raw = tokens[index]
                value = raw[1:-1] if raw.startswith('"') else raw
                index += 1
                if index < len(tokens) and tokens[index] == ";":
                    index += 1
                self.set(path + segments, value)
            elif tokens[index] == "{":
                self.set(path + segments)
                index = self._load_block(tokens, index + 1, path + segments)
            elif tokens[index] == ";":
                self.set(path + segments)
                index += 1
            else:
                raise ConfigError(f"unexpected token {tokens[index]!r}")
        if path:
            raise ConfigError("missing '}' in configuration text")
        return index

    # -- diffing (for commit) ---------------------------------------------------
    def snapshot(self) -> Dict[Tuple[str, ...], Any]:
        """Flatten to {path: value} for diffing."""
        return {path: node.value for path, node in self.walk()}

    @staticmethod
    def diff(old: Dict[Tuple[str, ...], Any],
             new: Dict[Tuple[str, ...], Any]):
        """Return (created, changed, deleted) path sets."""
        old_paths, new_paths = set(old), set(new)
        created = sorted(new_paths - old_paths)
        deleted = sorted(old_paths - new_paths, reverse=True)
        changed = sorted(p for p in new_paths & old_paths
                         if old[p] != new[p])
        return created, changed, deleted
