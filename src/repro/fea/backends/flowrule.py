"""The flow-rule backend: routes become match/action rules.

The fbgp2 lineage of dataplanes replaces the kernel FIB with an SDN
switch: a BGP route for ``10.1.0.0/16 via 192.168.0.1 dev eth0`` is not
a trie node but a flow rule —

    ``table=0 priority=16 match={ipv4_dst: 10.1.0.0/16}
    actions=[set_next_hop:192.168.0.1, output:eth0]``

— pushed to a forwarding element by a controller.  Longest-prefix-match
semantics survive the translation because rule *priority* is the prefix
length: the switch picks the highest-priority matching rule, which is
exactly the most specific prefix.

This backend models that controller channel: ``apply`` translates each
:class:`~repro.fea.backends.base.FibOp` into a rule add/remove against
per-family rule tables and acks synchronously (a controller's barrier
reply).  ``dump`` translates the installed rules *back* into
:class:`~repro.fea.fib.FibEntry` objects, so reconciliation never needs
to know it is talking to a switch rather than a kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fea.backends.base import ADD, CompletionCallback, FibBackend, FibOp
from repro.fea.fib import FibEntry
from repro.net import IPNet

#: OpenFlow-style table ids per address family
TABLE_IPV4 = 0
TABLE_IPV6 = 1

_MATCH_FIELD = {32: "ipv4_dst", 128: "ipv6_dst"}
_TABLE_BY_BITS = {32: TABLE_IPV4, 128: TABLE_IPV6}
_BITS_BY_TABLE = {TABLE_IPV4: 32, TABLE_IPV6: 128}


class FlowRule:
    """One match/action rule, the unit the forwarding element stores."""

    __slots__ = ("table", "priority", "match", "actions")

    def __init__(self, table: int, priority: int,
                 match: Dict[str, str], actions: List[Tuple[str, str]]):
        self.table = table
        self.priority = priority
        self.match = match
        self.actions = actions

    def __repr__(self) -> str:
        acts = ",".join(f"{kind}:{arg}" for kind, arg in self.actions)
        return (f"FlowRule(table={self.table} priority={self.priority} "
                f"match={self.match} actions=[{acts}])")


def entry_to_rule(entry: FibEntry) -> FlowRule:
    """Translate a forwarding entry into its match/action rule."""
    actions: List[Tuple[str, str]] = []
    if not entry.nexthop.is_zero():
        actions.append(("set_next_hop", str(entry.nexthop)))
    if entry.ifname:
        actions.append(("output", entry.ifname))
    return FlowRule(
        table=_TABLE_BY_BITS[entry.net.bits],
        priority=entry.net.prefix_len,
        match={_MATCH_FIELD[entry.net.bits]: str(entry.net)},
        actions=actions,
    )


def rule_to_entry(rule: FlowRule) -> FibEntry:
    """Translate an installed rule back into a forwarding entry."""
    bits = _BITS_BY_TABLE[rule.table]
    net = IPNet.parse(rule.match[_MATCH_FIELD[bits]])
    family = type(net.network)
    nexthop = family(0)
    ifname = ""
    for kind, arg in rule.actions:
        if kind == "set_next_hop":
            nexthop = family(arg)
        elif kind == "output":
            ifname = arg
    return FibEntry(net, nexthop, ifname)


class FlowRuleBackend(FibBackend):
    """A controller pushing flow rules; sync ack per barrier."""

    name = "flowrule"

    def __init__(self) -> None:
        super().__init__()
        #: (table, match-key) -> FlowRule — the forwarding element state
        self._rules: Dict[Tuple[int, str], FlowRule] = {}
        self._completion: Optional[CompletionCallback] = None
        self.rules_installed = 0
        self.rules_removed = 0

    @staticmethod
    def _key(rule: FlowRule) -> Tuple[int, str]:
        field, value = next(iter(rule.match.items()))
        return (rule.table, f"{field}={value}")

    def open(self, loop, completion: CompletionCallback) -> None:
        self._completion = completion

    def close(self) -> None:
        self._completion = None

    def apply(self, ops: Sequence[FibOp]) -> None:
        completion = self._completion
        rules = self._rules
        for op in ops:
            rule = entry_to_rule(op.entry)
            if op.op == ADD:
                rules[self._key(rule)] = rule
                self.rules_installed += 1
            else:
                if rules.pop(self._key(rule), None) is not None:
                    self.rules_removed += 1
            if completion is not None:
                completion(op.seq, True, "")

    def dump(self, bits: int) -> List[FibEntry]:
        table = _TABLE_BY_BITS[bits]
        return [rule_to_entry(rule) for rule in self._rules.values()
                if rule.table == table]

    def rules(self, table: Optional[int] = None) -> List[FlowRule]:
        """The installed rule set (optionally one table), for inspection."""
        return [rule for rule in self._rules.values()
                if table is None or rule.table == table]

    def __len__(self) -> int:
        return len(self._rules)
