"""The in-memory trie backend: the seed's simulated kernel, as a backend.

Synchronous and infallible — every operation is applied and acked within
the ``apply`` call — so it doubles as the reference implementation the
fault-injecting backends are tested against: under any fault schedule,
after reconciliation, a faulty backend's ``dump()`` must equal what this
backend would hold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fea.backends.base import ADD, CompletionCallback, FibBackend, FibOp
from repro.fea.fib import FibEntry
from repro.trie import RouteTrie


class TrieFibBackend(FibBackend):
    """Longest-prefix-match tries per family; sync, always acks."""

    name = "trie"

    def __init__(self) -> None:
        super().__init__()
        self._tables: Dict[int, RouteTrie] = {
            32: RouteTrie(32), 128: RouteTrie(128)}
        self._completion: Optional[CompletionCallback] = None

    def open(self, loop, completion: CompletionCallback) -> None:
        self._completion = completion

    def close(self) -> None:
        self._completion = None

    def apply(self, ops: Sequence[FibOp]) -> None:
        completion = self._completion
        for op in ops:
            table = self._tables[op.bits]
            if op.op == ADD:
                table.insert(op.entry.net, op.entry)
            else:
                table.discard(op.entry.net)
            if completion is not None:
                completion(op.seq, True, "")

    def dump(self, bits: int) -> List[FibEntry]:
        return [entry for __, entry in self._tables[bits].items()]

    def lookup(self, addr) -> Optional[FibEntry]:
        """Longest-prefix match (the per-packet dataplane consultation)."""
        match = self._tables[addr.BITS].best_match(addr)
        return match[1] if match is not None else None

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())
