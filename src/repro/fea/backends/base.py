"""The FIB backend API: one control plane, many dataplanes.

    "The FEA provides a stable API for communicating with a forwarding
    engine or engines."  (paper §3)

The seed hard-wired the FEA to one in-memory table that could never
fail, lag, or disagree with the RIB.  A :class:`FibBackend` makes the
RIB→FEA boundary a real distributed-systems boundary instead: a backend
is *asynchronous* (``apply`` returns before the dataplane did anything),
*lossy* (each operation is acked or nacked individually, and an ack may
never come), *slower than the control plane* (a bounded completion
queue pushes back), and *recoverable* (``dump()`` lets the FEA diff the
dataplane against its shadow table and replay the delta).

Three implementations ship:

* :class:`~repro.fea.backends.trie.TrieFibBackend` — the seed's
  in-memory longest-prefix-match trie; synchronous, always acks;
* :class:`~repro.fea.backends.flowrule.FlowRuleBackend` — translates
  routes into match/action flow rules, the SDN-controller dataplane
  shape (fbgp2-style);
* :class:`~repro.fea.backends.netlink.NetlinkFibBackend` — a
  "netlink-like" asynchronous kernel channel with a bounded completion
  queue and seeded fault injection (nack, drop-ack, latency,
  crash/restart).

Every operation the FEA hands a backend is a :class:`FibOp` carrying a
driver-assigned sequence number; the backend completes it by calling the
completion callback given to :meth:`FibBackend.open` with that sequence
number and an ack/nack verdict.  Operations are idempotent (a FIB add
overwrites, a FIB delete of an absent prefix is a no-op), which is what
makes blind retransmission after a nack or a lost ack safe.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.fea.fib import FibEntry

#: ``completion(seq, ok, reason)`` — *ok* is the ack/nack verdict;
#: *reason* is an errno-style token for nacks ("ENOBUFS", "EINVAL", ...)
CompletionCallback = Callable[[int, bool, str], None]

#: ``health(healthy)`` — edge-triggered: False on crash, True on reattach
HealthCallback = Callable[[bool], None]

ADD = "add"
DELETE = "delete"


class FibOp:
    """One dataplane operation: install or remove a forwarding entry."""

    __slots__ = ("op", "entry", "seq")

    def __init__(self, op: str, entry: FibEntry, seq: int = 0):
        if op not in (ADD, DELETE):
            raise ValueError(f"unknown FIB op {op!r}")
        self.op = op
        self.entry = entry
        self.seq = seq

    @property
    def bits(self) -> int:
        return self.entry.net.bits

    def __repr__(self) -> str:
        return f"FibOp(#{self.seq} {self.op} {self.entry.net})"


class FibBackend:
    """Abstract dataplane: the contract every forwarding engine honours.

    Lifecycle: the FEA constructs the backend, then calls :meth:`open`
    exactly once with the event loop and its completion callback before
    the first :meth:`apply`; :meth:`close` ends the attachment.  A
    backend that can fail additionally reports edge-triggered health
    transitions through the callback registered with
    :meth:`set_health_listener`.
    """

    #: registry / metrics name of the implementation
    name = "backend"

    def __init__(self) -> None:
        self._health_listener: Optional[HealthCallback] = None

    # -- lifecycle -----------------------------------------------------------
    def open(self, loop, completion: CompletionCallback) -> None:
        """Attach to the FEA: remember *loop* and the completion sink."""
        raise NotImplementedError

    def close(self) -> None:
        """Detach; pending operations will never complete."""
        raise NotImplementedError

    # -- the dataplane write path --------------------------------------------
    def apply(self, ops: Sequence[FibOp]) -> None:
        """Submit *ops* for installation.

        Asynchronous by contract: completions arrive through the
        callback given to :meth:`open`, possibly within this call
        (synchronous backends), possibly event-loop turns later, and —
        for a faulty backend — possibly never.  The driver above owns
        retries and timeouts; a backend never retries internally.
        """
        raise NotImplementedError

    # -- reconciliation ------------------------------------------------------
    def dump(self, bits: int) -> List[FibEntry]:
        """Every entry the dataplane currently holds for one family.

        The ground truth the FEA diffs its shadow table against after a
        failure; must reflect exactly the operations the backend acked
        (plus any it applied whose acks were lost).
        """
        raise NotImplementedError

    # -- health --------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """Liveness signal: False while the dataplane is unreachable."""
        return True

    def set_health_listener(self, listener: Optional[HealthCallback]) -> None:
        self._health_listener = listener

    def _notify_health(self, healthy: bool) -> None:
        if self._health_listener is not None:
            self._health_listener(healthy)
