"""The netlink-like backend: an asynchronous, lossy, crashable dataplane.

A real kernel route socket has every property the in-memory trie lacks:
requests queue behind a *bounded* buffer (overflow is an ``ENOBUFS``
nack — the kernel's backpressure), each request is acknowledged
individually and asynchronously, acknowledgements can be lost, the
channel is slower than the control plane, and the forwarding engine can
crash and come back empty.  This backend models all of that with the
same discipline as :class:`~repro.xrl.transport.fault.FaultFamily`:
every fault decision comes from one seeded :class:`random.Random` and
every delay is scheduled on the caller's event loop, so a chaos run
under a :class:`~repro.eventloop.clock.SimulatedClock` is exactly
reproducible.

Fault shapes (mirroring the FaultFamily kinds, applied to FIB ops
instead of XRL frames):

* **nack** — the operation is rejected and not applied (``EINVAL``);
* **drop-ack** — the operation *is* applied but its completion never
  arrives (the ack datagram is lost);
* **latency** — each queued operation completes only after a seeded
  service delay, which is also the throughput throttle;
* **crash/restart** — :meth:`crash` drops the channel and (by default)
  the dataplane's tables; queued and in-flight operations are lost and
  never complete; :meth:`restart` reattaches an empty dataplane.

The driver above is expected to survive every one of these through
retries, ack timeouts and reconciliation — that is what the resilience
suite asserts.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.fea.backends.base import ADD, CompletionCallback, FibBackend, FibOp
from repro.fea.fib import FibEntry
from repro.net import IPNet


class BackendFaultPlan:
    """Seeded fault schedule: nack / drop-ack / latency decisions."""

    def __init__(self, *, seed: int = 0,
                 nack_probability: float = 0.0,
                 drop_ack_probability: float = 0.0,
                 latency: float = 0.001,
                 latency_jitter: float = 0.0):
        if latency <= 0:
            raise ValueError("latency must be > 0 (a zero-delay completion "
                             "would race the submitting turn)")
        self.nack_probability = nack_probability
        self.drop_ack_probability = drop_ack_probability
        self.latency = latency
        self.latency_jitter = latency_jitter
        self._rng = random.Random(seed)

    def _roll(self, probability: float) -> bool:
        return probability > 0 and self._rng.random() < probability

    def roll_nack(self) -> bool:
        return self._roll(self.nack_probability)

    def roll_drop_ack(self) -> bool:
        return self._roll(self.drop_ack_probability)

    def next_latency(self) -> float:
        delay = self.latency
        if self.latency_jitter > 0:
            delay += self._rng.random() * self.latency_jitter
        return delay


class NetlinkStats:
    """Counters for everything the channel did, by outcome."""

    __slots__ = ("applied", "acked", "nacked", "dropped_acks", "rejected",
                 "lost", "crashes")

    def __init__(self) -> None:
        self.applied = 0        # ops that reached the dataplane tables
        self.acked = 0          # completions delivered with ok=True
        self.nacked = 0         # completions delivered with ok=False
        self.dropped_acks = 0   # applied, but the ack was lost
        self.rejected = 0       # ENOBUFS: bounded queue overflow
        self.lost = 0           # ops discarded by a crash
        self.crashes = 0

    def __repr__(self) -> str:
        return (f"<NetlinkStats applied={self.applied} acked={self.acked} "
                f"nacked={self.nacked} dropped_acks={self.dropped_acks} "
                f"rejected={self.rejected} lost={self.lost} "
                f"crashes={self.crashes}>")


class NetlinkFibBackend(FibBackend):
    """Bounded async completion queue + seeded faults + crash/restart."""

    name = "netlink"

    def __init__(self, *, queue_capacity: int = 256,
                 ops_per_completion: int = 1,
                 fault_plan: Optional[BackendFaultPlan] = None):
        super().__init__()
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, "
                             f"got {queue_capacity}")
        self.queue_capacity = queue_capacity
        #: how many queued ops one service tick completes (batch drain)
        self.ops_per_completion = ops_per_completion
        self.fault_plan = fault_plan if fault_plan is not None \
            else BackendFaultPlan()
        self.stats = NetlinkStats()
        self._tables: Dict[int, Dict[IPNet, FibEntry]] = {32: {}, 128: {}}
        self._queue: Deque[FibOp] = deque()
        self._loop = None
        self._completion: Optional[CompletionCallback] = None
        self._crashed = False
        self._drain_pending = False
        #: increments per crash so a stale drain timer from a previous
        #: incarnation never services the restarted channel
        self._generation = 0

    # -- lifecycle -----------------------------------------------------------
    def open(self, loop, completion: CompletionCallback) -> None:
        self._loop = loop
        self._completion = completion

    def close(self) -> None:
        self._completion = None
        self._queue.clear()

    @property
    def healthy(self) -> bool:
        return not self._crashed

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- the write path ------------------------------------------------------
    def apply(self, ops: Sequence[FibOp]) -> None:
        if self._crashed:
            # The channel is gone: ops vanish, completions never come.
            self.stats.lost += len(ops)
            return
        queue = self._queue
        append = queue.append
        for op in ops:
            if len(queue) >= self.queue_capacity:
                # The bounded buffer is the backpressure: reject now.
                self.stats.rejected += 1
                self._complete(op.seq, False, "ENOBUFS")
                continue
            append(op)
        self._schedule_drain()

    def _complete(self, seq: int, ok: bool, reason: str) -> None:
        if ok:
            self.stats.acked += 1
        else:
            self.stats.nacked += 1
        if self._completion is not None:
            self._completion(seq, ok, reason)

    def _schedule_drain(self) -> None:
        if self._drain_pending or not self._queue or self._loop is None:
            return
        self._drain_pending = True
        generation = self._generation
        self._loop.call_later(self.fault_plan.next_latency(),
                              lambda: self._drain(generation),
                              name="netlink-drain")

    def _drain(self, generation: int) -> None:
        self._drain_pending = False
        if generation != self._generation or self._crashed:
            return
        popleft = self._queue.popleft
        fault_plan = self.fault_plan
        for __ in range(min(self.ops_per_completion, len(self._queue))):
            op = popleft()
            if fault_plan.roll_nack():
                self._complete(op.seq, False, "EINVAL")
                continue
            table = self._tables[op.bits]
            entry = op.entry
            if op.op == ADD:
                table[entry.net] = entry
            else:
                table.pop(entry.net, None)
            self.stats.applied += 1
            if fault_plan.roll_drop_ack():
                self.stats.dropped_acks += 1
                continue
            self._complete(op.seq, True, "")
        self._schedule_drain()

    # -- crash / restart -----------------------------------------------------
    def crash(self, *, lose_tables: bool = True) -> None:
        """The dataplane dies: queued ops are lost, health goes down.

        With *lose_tables* (the default) the forwarding engine reboots
        empty — the worst case reconciliation must recover from.  With
        ``lose_tables=False`` only the channel dies (a netlink socket
        reset): the tables survive, but any in-queue ops are still lost.
        """
        if self._crashed:
            return
        self._crashed = True
        self._generation += 1
        self.stats.crashes += 1
        self.stats.lost += len(self._queue)
        self._queue.clear()
        if lose_tables:
            for table in self._tables.values():
                table.clear()
        self._notify_health(False)

    def restart(self) -> None:
        """Reattach the dataplane; the FEA reconciles on the up edge."""
        if not self._crashed:
            return
        self._crashed = False
        self._notify_health(True)

    # -- reconciliation ------------------------------------------------------
    def dump(self, bits: int) -> List[FibEntry]:
        return list(self._tables[bits].values())

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())
