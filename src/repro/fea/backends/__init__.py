"""Pluggable FIB backends — the dataplanes the FEA can drive.

The registry maps the names accepted by ``FeaProcess(backend=...)`` (and
the ``repro-fea --backend`` flag) to implementations; ``make_backend``
is the one constructor the FEA itself is allowed to call (analysis rule
BKD001 enforces that the FEA never builds a dataplane any other way).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.fea.backends.base import (
    ADD,
    DELETE,
    CompletionCallback,
    FibBackend,
    FibOp,
    HealthCallback,
)
from repro.fea.backends.flowrule import FlowRule, FlowRuleBackend
from repro.fea.backends.netlink import (
    BackendFaultPlan,
    NetlinkFibBackend,
    NetlinkStats,
)
from repro.fea.backends.trie import TrieFibBackend

#: name -> factory; factories accept the keyword options of the backend
BACKENDS: Dict[str, Callable[..., FibBackend]] = {
    TrieFibBackend.name: TrieFibBackend,
    FlowRuleBackend.name: FlowRuleBackend,
    NetlinkFibBackend.name: NetlinkFibBackend,
}


def make_backend(name: str, **options) -> FibBackend:
    """Construct a registered backend by name.

    >>> make_backend("trie").name
    'trie'
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown FIB backend {name!r} (known: {known})") from None
    return factory(**options)


__all__ = [
    "ADD",
    "DELETE",
    "BACKENDS",
    "BackendFaultPlan",
    "CompletionCallback",
    "FibBackend",
    "FibOp",
    "FlowRule",
    "FlowRuleBackend",
    "HealthCallback",
    "NetlinkFibBackend",
    "NetlinkStats",
    "TrieFibBackend",
    "make_backend",
]
