"""Network interface management for the FEA."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.net import IPNet, IPv4


class Interface:
    """One router interface: a name, an address, and an enabled flag."""

    __slots__ = ("name", "addr", "prefix_len", "enabled", "cost")

    def __init__(self, name: str, addr: IPv4, prefix_len: int, *,
                 enabled: bool = True, cost: int = 1):
        self.name = name
        self.addr = addr
        self.prefix_len = prefix_len
        self.enabled = enabled
        self.cost = cost

    @property
    def subnet(self) -> IPNet:
        """The directly connected prefix this interface sits on."""
        return IPNet(self.addr, self.prefix_len)

    def __repr__(self) -> str:
        state = "up" if self.enabled else "down"
        return f"Interface({self.name!r} {self.addr}/{self.prefix_len} {state})"


class InterfaceManager:
    """The FEA's interface tree."""

    def __init__(self) -> None:
        self._interfaces: Dict[str, Interface] = {}

    def add(self, interface: Interface) -> Interface:
        if interface.name in self._interfaces:
            raise ValueError(f"interface {interface.name!r} already exists")
        self._interfaces[interface.name] = interface
        return interface

    def create(self, name: str, addr, prefix_len: int, **kwargs) -> Interface:
        return self.add(Interface(name, IPv4(addr), prefix_len, **kwargs))

    def get(self, name: str) -> Interface:
        interface = self._interfaces.get(name)
        if interface is None:
            raise KeyError(f"no interface {name!r}")
        return interface

    def find(self, name: str) -> Optional[Interface]:
        return self._interfaces.get(name)

    def names(self) -> list:
        return sorted(self._interfaces)

    def __iter__(self) -> Iterator[Interface]:
        return iter(self._interfaces.values())

    def __len__(self) -> int:
        return len(self._interfaces)

    def interface_for_addr(self, addr) -> Optional[Interface]:
        """The enabled interface whose subnet covers *addr*, if any."""
        for interface in self._interfaces.values():
            if interface.enabled and interface.subnet.contains_addr(addr):
                return interface
        return None
