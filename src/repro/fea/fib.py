"""The simulated kernel forwarding table.

The paper's latency experiments end at "Entering kernel": the moment the
route reaches the forwarding plane's table.  :class:`Fib` is that table —
a longest-prefix-match structure the simulated data plane consults per
packet.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.net import IPNet
from repro.trie import RouteTrie


class FibEntry:
    """One forwarding entry: destination prefix, gateway, output interface."""

    __slots__ = ("net", "nexthop", "ifname")

    def __init__(self, net: IPNet, nexthop, ifname: str = ""):
        self.net = net
        self.nexthop = nexthop
        self.ifname = ifname

    def __repr__(self) -> str:
        return f"FibEntry({self.net} via {self.nexthop} dev {self.ifname!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FibEntry)
            and self.net == other.net
            and self.nexthop == other.nexthop
            and self.ifname == other.ifname
        )

    def __hash__(self) -> int:
        # Hash exactly the fields __eq__ compares, so entries can key the
        # shadow-vs-dump diff sets reconciliation is built on.
        return hash((self.net, self.nexthop, self.ifname))


class Fib:
    """Longest-prefix-match forwarding table for one address family."""

    def __init__(self, bits: int = 32):
        self._trie = RouteTrie(bits)

    def __len__(self) -> int:
        return len(self._trie)

    def insert(self, entry: FibEntry) -> Optional[FibEntry]:
        """Install *entry*, overwriting any entry for the same prefix."""
        return self._trie.insert(entry.net, entry)

    def remove(self, net: IPNet) -> Optional[FibEntry]:
        """Remove the entry for *net*; returns it or None."""
        return self._trie.discard(net)

    def lookup(self, addr) -> Optional[FibEntry]:
        """Longest-prefix match for a destination address."""
        match = self._trie.best_match(addr)
        return match[1] if match is not None else None

    def exact(self, net: IPNet) -> Optional[FibEntry]:
        return self._trie.exact(net)

    def entries(self) -> Iterator[Tuple[IPNet, FibEntry]]:
        return self._trie.items()

    def clear(self) -> None:
        self._trie.clear()
