"""The backend driver: retries, timeouts, backpressure, reconciliation.

This is the robustness layer between the FEA's XRL surface and a
:class:`~repro.fea.backends.base.FibBackend`.  The FEA keeps *shadow
tables* (plain :class:`~repro.fea.fib.Fib` instances) that always hold
the control plane's **intended** forwarding state; the driver's job is
to make the dataplane converge to the shadow no matter how the backend
misbehaves:

* **nack** → per-op retry with capped exponential backoff (operations
  are idempotent, so blind retransmission is safe);
* **lost ack** → an ack-timeout sweep resubmits operations whose
  completion never arrived (the sweep timer only runs while operations
  are pending, so a synchronous backend costs no timers at all);
* **slow backend** → the count of unacknowledged operations is the
  *backpressure window*: above ``high_watermark`` the driver latches
  ``congested`` (cleared at ``low_watermark``), and the FEA piggybacks
  that bit on every FIB XRL reply so the RIB can pause;
* **crash** → the driver goes *stale*: writes update only the shadow
  (lookups keep being served from it — graceful degradation), and on
  the backend's up edge :meth:`reconcile` diffs ``dump()`` against the
  shadow per family and replays exactly the delta.

Reconciliation replays flow through the same retry/timeout machinery,
so convergence holds even when the repair traffic itself is faulted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.fea.backends.base import ADD, DELETE, FibBackend, FibOp
from repro.fea.fib import Fib, FibEntry
from repro.net import IPNet


class _Pending:
    """One submitted operation awaiting its ack."""

    __slots__ = ("op", "attempts", "deadline")

    def __init__(self, op: FibOp, attempts: int, deadline: float):
        self.op = op
        self.attempts = attempts
        self.deadline = deadline


class BackendDriver:
    """Drives one :class:`FibBackend` toward the FEA's shadow tables."""

    def __init__(self, backend: FibBackend, loop, *,
                 fib4: Fib, fib6: Fib,
                 high_watermark: int = 512, low_watermark: int = 128,
                 max_attempts: int = 6,
                 retry_base: float = 0.05, retry_cap: float = 1.0,
                 ack_timeout: float = 2.0):
        if low_watermark > high_watermark:
            raise ValueError("low_watermark must be <= high_watermark")
        if retry_base <= 0 or ack_timeout <= 0:
            raise ValueError("retry_base and ack_timeout must be > 0")
        self.backend = backend
        self.loop = loop
        self.shadow = {32: fib4, 128: fib6}
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.max_attempts = max_attempts
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.ack_timeout = ack_timeout

        self._seq = 0
        self._pending: Dict[int, _Pending] = {}
        self.peak_pending = 0
        self._retries_scheduled = 0
        self._sweep_scheduled = False
        self._congested = False
        self._stale = not backend.healthy

        # Counters live on the driver even before register_metrics so the
        # bookkeeping never needs None checks; registration swaps them
        # for the registry's instruments.
        self._c_acks = _NullCounter()
        self._c_nacks = _NullCounter()
        self._c_retries = _NullCounter()
        self._c_ack_timeouts = _NullCounter()
        self._c_failed = _NullCounter()
        self._c_deferred = _NullCounter()
        self._c_rec_runs = _NullCounter()
        self._c_rec_adds = _NullCounter()
        self._c_rec_deletes = _NullCounter()

        backend.set_health_listener(self._on_health)
        backend.open(loop, self._on_completion)

    def close(self) -> None:
        self.backend.set_health_listener(None)
        self.backend.close()
        self._pending.clear()

    # -- observability --------------------------------------------------------
    def register_metrics(self, metrics) -> None:
        """Register the driver's counters and gauges on a process registry."""
        self._c_acks = metrics.counter("backend.acks")
        self._c_nacks = metrics.counter("backend.nacks")
        self._c_retries = metrics.counter("backend.retries")
        self._c_ack_timeouts = metrics.counter("backend.ack_timeouts")
        self._c_failed = metrics.counter("backend.failed")
        self._c_deferred = metrics.counter("backend.deferred")
        self._c_rec_runs = metrics.counter("backend.reconcile.runs")
        self._c_rec_adds = metrics.counter("backend.reconcile.adds")
        self._c_rec_deletes = metrics.counter("backend.reconcile.deletes")
        metrics.gauge("backend.pending", lambda: len(self._pending))
        metrics.gauge("backend.peak_pending", lambda: self.peak_pending)
        metrics.gauge("backend.congested", lambda: self._congested)
        metrics.gauge("backend.stale", lambda: self._stale)

    @property
    def queued(self) -> int:
        """Operations submitted but not yet acked (the pressure signal)."""
        return len(self._pending)

    @property
    def congested(self) -> bool:
        """Latched above ``high_watermark``, released at ``low_watermark``."""
        return self._congested

    @property
    def stale(self) -> bool:
        """True while the dataplane is down and the shadow is authoritative."""
        return self._stale

    @property
    def settled(self) -> bool:
        """No pending acks and no retry timers outstanding (for tests)."""
        return not self._pending and self._retries_scheduled == 0

    def status(self) -> str:
        """Supervisor-visible one-word dataplane state."""
        if self._stale:
            return "stale"
        if self._congested:
            return "congested"
        return "synced"

    # -- the write path (shadow first, then the dataplane) --------------------
    def add(self, entry: FibEntry) -> None:
        self.add_batch([entry])

    def delete(self, net: IPNet) -> None:
        self.delete_batch([net])

    def add_batch(self, entries: Iterable[FibEntry]) -> None:
        ops = []
        for entry in entries:
            self.shadow[entry.net.bits].insert(entry)
            ops.append(FibOp(ADD, entry))
        self._submit(ops)

    def delete_batch(self, nets: Iterable[IPNet]) -> None:
        ops = []
        for net in nets:
            removed = self.shadow[net.bits].remove(net)
            # A delete for a prefix we never held still goes to the
            # dataplane (it may hold it — e.g. an add whose ack we lost
            # judged failed); removing an absent entry is a no-op there.
            entry = removed if removed is not None else \
                FibEntry(net, type(net.network)(0), "")
            ops.append(FibOp(DELETE, entry))
        self._submit(ops)

    def _submit(self, ops: List[FibOp]) -> None:
        if not ops:
            return
        if self._stale:
            # Dataplane down: the shadow recorded the intent; the
            # reconciliation pass on reattach replays the delta.
            self._c_deferred.inc(len(ops))
            return
        deadline = self.loop.clock.now() + self.ack_timeout
        for op in ops:
            self._seq += 1
            op.seq = self._seq
            self._pending[op.seq] = _Pending(op, attempts=1, deadline=deadline)
        self._update_congestion()
        self.backend.apply(ops)
        self._schedule_sweep()

    # -- completions -----------------------------------------------------------
    def _on_completion(self, seq: int, ok: bool, reason: str) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return  # late ack for an op we resubmitted or abandoned
        if ok:
            self._c_acks.inc()
            self._update_congestion()
            return
        self._c_nacks.inc()
        if pending.attempts >= self.max_attempts:
            # Give up; the shadow still holds the intent, so the next
            # reconciliation pass repairs the divergence.
            self._c_failed.inc()
            self._update_congestion()
            return
        # Capped exponential backoff, then retransmit the same op (same
        # payload, fresh seq) through the normal submission path.
        delay = min(self.retry_cap,
                    self.retry_base * (2 ** (pending.attempts - 1)))
        self._retries_scheduled += 1
        self.loop.call_later(
            delay, lambda: self._retry(pending), name="fib-retry")

    def _retry(self, pending: _Pending) -> None:
        self._retries_scheduled -= 1
        if self._stale:
            self._c_deferred.inc()
            return
        self._c_retries.inc()
        op = pending.op
        self._seq += 1
        op.seq = self._seq
        self._pending[op.seq] = _Pending(
            op, attempts=pending.attempts + 1,
            deadline=self.loop.clock.now() + self.ack_timeout)
        self._update_congestion()
        self.backend.apply([op])
        self._schedule_sweep()

    # -- ack timeouts ------------------------------------------------------------
    def _schedule_sweep(self) -> None:
        if self._sweep_scheduled or not self._pending:
            return
        self._sweep_scheduled = True
        self.loop.call_later(self.ack_timeout / 2, self._sweep,
                             name="fib-ack-sweep")

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        if self._stale:
            return
        now = self.loop.clock.now()
        expired = [p for p in self._pending.values() if p.deadline <= now]
        resubmit = []
        c_failed = self._c_failed
        c_ack_timeouts = self._c_ack_timeouts
        c_retries = self._c_retries
        for pending in expired:
            del self._pending[pending.op.seq]
            if pending.attempts >= self.max_attempts:
                c_failed.inc()
                continue
            c_ack_timeouts.inc()
            c_retries.inc()
            op = pending.op
            self._seq += 1
            op.seq = self._seq
            self._pending[op.seq] = _Pending(
                op, attempts=pending.attempts + 1,
                deadline=now + self.ack_timeout)
            resubmit.append(op)
        self._update_congestion()
        if resubmit:
            self.backend.apply(resubmit)
        self._schedule_sweep()

    # -- backpressure ------------------------------------------------------------
    def _update_congestion(self) -> None:
        if len(self._pending) > self.peak_pending:
            self.peak_pending = len(self._pending)
        if not self._congested and len(self._pending) >= self.high_watermark:
            self._congested = True
        elif self._congested and len(self._pending) <= self.low_watermark:
            self._congested = False

    # -- health / degradation ------------------------------------------------------
    def _on_health(self, healthy: bool) -> None:
        if not healthy:
            # Everything in flight died with the channel.  The shadow has
            # it all, so abandon the acks and let reconciliation repair.
            self._c_deferred.inc(len(self._pending))
            self._pending.clear()
            self._congested = False
            self._stale = True
            return
        self._stale = False
        self.reconcile()

    # -- reconciliation ---------------------------------------------------------
    def reconcile(self) -> Tuple[int, int]:
        """Diff ``backend.dump()`` against the shadow; replay the delta.

        Returns ``(adds, deletes)`` — the number of repair operations
        submitted.  Repairs flow through the normal retry/timeout path,
        so they too survive faults.
        """
        self._c_rec_runs.inc()
        ops: List[FibOp] = []
        dump = self.backend.dump
        for bits, fib in self.shadow.items():
            want = {entry for __, entry in fib.entries()}
            have = set(dump(bits))
            for entry in sorted(want - have, key=lambda e: str(e.net)):
                ops.append(FibOp(ADD, entry))
            for entry in sorted(have - want, key=lambda e: str(e.net)):
                ops.append(FibOp(DELETE, entry))
        adds = sum(1 for op in ops if op.op == ADD)
        deletes = len(ops) - adds
        self._c_rec_adds.inc(adds)
        self._c_rec_deletes.inc(deletes)
        self._submit(ops)
        return adds, deletes


class _NullCounter:
    """Stand-in until :meth:`BackendDriver.register_metrics` runs."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass
