"""``python -m repro.fea`` — the FEA as a standalone OS process."""

import sys
from typing import List, Optional

from repro.core.runtime import ChildRuntime, base_parser, parse_ifaddr
from repro.fea import FeaProcess


def main(argv: Optional[List[str]] = None) -> None:
    parser = base_parser("repro.fea")
    parser.add_argument("--ifaddr", action="append", default=[],
                        type=parse_ifaddr, metavar="IF=ADDR/PREFIXLEN[:COST]",
                        help="interface to create at startup (repeatable)")
    args = parser.parse_args(argv)
    runtime = ChildRuntime(args.finder, codec=args.codec)
    fea = FeaProcess(runtime.host)
    for name, addr, prefix_len, cost in args.ifaddr:
        fea.ifmgr.create(name, addr, prefix_len, cost=cost)
    runtime.install_signal_handlers()
    runtime.run()


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    main(sys.argv[1:])
