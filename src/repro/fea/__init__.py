"""The Forwarding Engine Abstraction (paper §3, §7).

    "The FEA provides a stable API for communicating with a forwarding
    engine or engines."

The forwarding engine is pluggable: the FEA keeps *shadow tables*
(:class:`Fib`) holding the control plane's intended state and drives one
of several :mod:`~repro.fea.backends` — the in-memory trie, an SDN-style
flow-rule table, or a fault-injecting "netlink-like" channel — through a
:class:`~repro.fea.driver.BackendDriver` that owns retries, ack
timeouts, backpressure and failure-driven reconciliation.  The FEA also
plays its paper §7 security role: it relays raw network access on behalf
of sandboxed routing processes ("rather than sending UDP packets
directly, RIP sends and receives packets using XRL calls to the FEA"),
so no protocol process ever needs privileged socket access.
"""

from repro.fea.backends import (
    BACKENDS,
    BackendFaultPlan,
    FibBackend,
    FibOp,
    FlowRuleBackend,
    NetlinkFibBackend,
    TrieFibBackend,
    make_backend,
)
from repro.fea.driver import BackendDriver
from repro.fea.fib import Fib, FibEntry
from repro.fea.ifmgr import Interface, InterfaceManager
from repro.fea.fea import FeaProcess
from repro.fea.rawsock import LoopbackPacketIO, PacketIO

__all__ = [
    "BACKENDS",
    "BackendDriver",
    "BackendFaultPlan",
    "FeaProcess",
    "Fib",
    "FibBackend",
    "FibEntry",
    "FibOp",
    "FlowRuleBackend",
    "Interface",
    "InterfaceManager",
    "LoopbackPacketIO",
    "NetlinkFibBackend",
    "PacketIO",
    "TrieFibBackend",
    "make_backend",
]
