"""The Forwarding Engine Abstraction (paper §3, §7).

    "The FEA provides a stable API for communicating with a forwarding
    engine or engines."

In this reproduction the forwarding engine is a simulated kernel FIB
(:class:`Fib`) doing longest-prefix-match forwarding.  The FEA also plays
its paper §7 security role: it relays raw network access on behalf of
sandboxed routing processes ("rather than sending UDP packets directly,
RIP sends and receives packets using XRL calls to the FEA"), so no
protocol process ever needs privileged socket access.
"""

from repro.fea.fib import Fib, FibEntry
from repro.fea.ifmgr import Interface, InterfaceManager
from repro.fea.fea import FeaProcess
from repro.fea.rawsock import LoopbackPacketIO, PacketIO

__all__ = [
    "FeaProcess",
    "Fib",
    "FibEntry",
    "Interface",
    "InterfaceManager",
    "LoopbackPacketIO",
    "PacketIO",
]
