"""The FEA process: FIB, interfaces, raw sockets, multicast FIB — as XRLs."""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.process import Host, XorpProcess
from repro.fea.backends import FibBackend, make_backend
from repro.fea.driver import BackendDriver
from repro.fea.fib import Fib, FibEntry
from repro.fea.ifmgr import InterfaceManager
from repro.fea.rawsock import PacketIO, RawSocketRelay
from repro.interfaces import (
    COMMON_IDL,
    FEA_FIB_IDL,
    FEA_IFMGR_IDL,
    FEA_MFIB_IDL,
    FEA_RAWPKT4_IDL,
)
from repro.net import IPNet, IPv4
from repro.profiler import PROFILER_IDL, Profiler
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl


class MfcEntry:
    """One multicast forwarding cache entry: (S, G) -> iif, oifs."""

    __slots__ = ("source", "group", "iif", "oifs")

    def __init__(self, source: IPv4, group: IPv4, iif: str, oifs: Tuple[str, ...]):
        self.source = source
        self.group = group
        self.iif = iif
        self.oifs = tuple(oifs)

    def __repr__(self) -> str:
        return f"MfcEntry(({self.source},{self.group}) iif={self.iif} oifs={self.oifs})"


class FeaProcess(XorpProcess):
    """Forwarding Engine Abstraction as a XORP process."""

    process_name = "fea"

    def __init__(self, host: Host, *, packet_io: Optional[PacketIO] = None,
                 backend: Union[str, FibBackend] = "trie",
                 backend_options: Optional[dict] = None,
                 driver_options: Optional[dict] = None):
        super().__init__(host)
        self.xrl = self.create_router("fea", singleton=True)
        #: shadow tables: the control plane's *intended* forwarding state.
        #: Lookups are always served from here, so the FEA keeps answering
        #: even while the dataplane backend is down (graceful degradation).
        self.fib4 = Fib(32)
        self.fib6 = Fib(128)
        if isinstance(backend, str):
            backend = make_backend(backend, **(backend_options or {}))
        self.backend = backend
        self.driver = BackendDriver(backend, self.loop,
                                    fib4=self.fib4, fib6=self.fib6,
                                    **(driver_options or {}))
        self.driver.register_metrics(self.metrics)
        self.metrics.gauge("backend.healthy", lambda: self.backend.healthy)
        self.ifmgr = InterfaceManager()
        self.mfib: Dict[Tuple[int, int], MfcEntry] = {}
        self.relay: Optional[RawSocketRelay] = None
        if packet_io is not None:
            self.attach_packet_io(packet_io)
        self.profiler = Profiler(self.loop.clock)
        self._prof_arrive = self.profiler.create("route_arrive_fea")
        self._prof_kernel = self.profiler.create("route_kernel")
        self.metrics.gauge("fib4.routes", lambda: len(self.fib4))
        self.metrics.gauge("fib6.routes", lambda: len(self.fib6))
        self.metrics.gauge("mfib.entries", lambda: len(self.mfib))
        self.xrl.bind(FEA_FIB_IDL, self)
        self.xrl.bind(FEA_IFMGR_IDL, self)
        self.xrl.bind(FEA_RAWPKT4_IDL, self)
        self.xrl.bind(FEA_MFIB_IDL, self)
        self.xrl.bind(PROFILER_IDL, self.profiler)
        self.xrl.bind(COMMON_IDL, self)
        #: raw-socket creator classes whose lifetime we watch
        self._socket_creators: set = set()

    def attach_packet_io(self, packet_io: PacketIO) -> None:
        self.relay = RawSocketRelay(packet_io)
        self.relay.set_notifier(self._notify_recv_udp)

    # -- fea_fib/1.0 -----------------------------------------------------
    # One family-agnostic helper per arity: v4 and v6 share segmenting,
    # profiling, and the backpressure reply (queued / congested).
    def _fib_status(self) -> dict:
        return {"queued": self.driver.queued,
                "congested": self.driver.congested}

    def _fib_add(self, net, nexthop, ifname) -> dict:
        self._prof_arrive.log_op("add", net)
        # "the FEA will unconditionally install the route in the kernel or
        # the forwarding engine." — the shadow records the intent now; the
        # driver converges the backend to it.
        self.driver.add(FibEntry(net, nexthop, ifname))
        self._prof_kernel.log_op("add", net)
        return self._fib_status()

    def _fib_delete(self, net) -> dict:
        self._prof_arrive.log_op("delete", net)
        self.driver.delete(net)
        self._prof_kernel.log_op("delete", net)
        return self._fib_status()

    def _fib_add_vector(self, nets, nexthops, ifnames) -> dict:
        entries = [FibEntry(net.value, nexthop.value, ifname.value)
                   for net, nexthop, ifname
                   in zip(nets, nexthops, ifnames)]
        prof_arrive = self._prof_arrive
        if prof_arrive.enabled:
            for entry in entries:
                prof_arrive.log_op("add", entry.net)
        # The vectorized segment reaches the backend as one apply() batch.
        self.driver.add_batch(entries)
        prof_kernel = self._prof_kernel
        if prof_kernel.enabled:
            for entry in entries:
                prof_kernel.log_op("add", entry.net)
        return self._fib_status()

    def _fib_delete_vector(self, nets) -> dict:
        prof_arrive = self._prof_arrive
        if prof_arrive.enabled:
            for net in nets:
                prof_arrive.log_op("delete", net.value)
        self.driver.delete_batch([net.value for net in nets])
        prof_kernel = self._prof_kernel
        if prof_kernel.enabled:
            for net in nets:
                prof_kernel.log_op("delete", net.value)
        return self._fib_status()

    def xrl_add_entry4(self, net, nexthop, ifname) -> dict:
        return self._fib_add(net, nexthop, ifname)

    def xrl_delete_entry4(self, net) -> dict:
        return self._fib_delete(net)

    def xrl_add_entries4(self, nets, nexthops, ifnames) -> dict:
        return self._fib_add_vector(nets, nexthops, ifnames)

    def xrl_delete_entries4(self, nets) -> dict:
        return self._fib_delete_vector(nets)

    def xrl_lookup_entry4(self, addr) -> dict:
        entry = self.fib4.lookup(addr)
        if entry is None:
            return {"resolves": False, "net": IPNet(IPv4(0), 0),
                    "nexthop": IPv4(0), "ifname": ""}
        ifname = entry.ifname
        if not ifname and not entry.nexthop.is_zero():
            # Recursive route: resolve the gateway to its interface.
            via = self.fib4.lookup(entry.nexthop)
            if via is not None:
                ifname = via.ifname
        return {"resolves": True, "net": entry.net,
                "nexthop": entry.nexthop, "ifname": ifname}

    def xrl_add_entries6(self, nets, nexthops, ifnames) -> dict:
        return self._fib_add_vector(nets, nexthops, ifnames)

    def xrl_delete_entries6(self, nets) -> dict:
        return self._fib_delete_vector(nets)

    def xrl_add_entry6(self, net, nexthop, ifname) -> dict:
        return self._fib_add(net, nexthop, ifname)

    def xrl_delete_entry6(self, net) -> dict:
        return self._fib_delete(net)

    # -- dataplane management -------------------------------------------
    def xrl_get_backend_status(self) -> dict:
        return {"backend": self.backend.name,
                "healthy": self.backend.healthy,
                "state": self.driver.status()}

    def xrl_get_queue_status(self) -> dict:
        return self._fib_status()

    def xrl_reconcile(self) -> dict:
        adds, deletes = self.driver.reconcile()
        return {"adds": adds, "deletes": deletes}

    # -- fea_ifmgr/1.0 ---------------------------------------------------
    def xrl_get_interfaces(self) -> dict:
        return {"ifnames": ",".join(self.ifmgr.names())}

    def xrl_get_interface_addr4(self, ifname) -> dict:
        try:
            interface = self.ifmgr.get(ifname)
        except KeyError as exc:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, str(exc)) from exc
        return {"addr": interface.addr, "prefix_len": interface.prefix_len}

    def xrl_set_interface_enabled(self, ifname, enabled) -> None:
        try:
            self.ifmgr.get(ifname).enabled = enabled
        except KeyError as exc:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, str(exc)) from exc

    def xrl_get_interface_enabled(self, ifname) -> dict:
        try:
            return {"enabled": self.ifmgr.get(ifname).enabled}
        except KeyError as exc:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, str(exc)) from exc

    # -- fea_rawpkt4/1.0 (the §7 relay) -------------------------------------
    def _require_relay(self) -> RawSocketRelay:
        if self.relay is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                "this FEA has no packet I/O backend attached",
            )
        return self.relay

    def xrl_open_udp(self, creator, ifname, port) -> None:
        try:
            self._require_relay().open_udp(creator, ifname, port)
        except ValueError as exc:
            raise XrlError(XrlErrorCode.COMMAND_FAILED, str(exc)) from exc
        self._watch_socket_creator(str(creator))

    def _watch_socket_creator(self, creator: str) -> None:
        """Close a creator's sockets when its last instance dies.

        Without this, a crashed protocol's sockets would keep swallowing
        packets — and its restarted incarnation could not re-open them.
        """
        if creator in self._socket_creators:
            return
        self._socket_creators.add(creator)
        self.host.finder.watch(
            self._socket_watcher_name(), creator,
            lambda event, cls, instance, c=creator:
                self._creator_lifetime(c, event))

    def _socket_watcher_name(self) -> str:
        return f"fea-sock:{self.xrl.instance_name}"

    def _creator_lifetime(self, creator: str, event: str) -> None:
        from repro.xrl.finder import DEATH

        if (event == DEATH and self.running and self.relay is not None
                and not self.host.finder.class_instances(creator)):
            self.relay.close_all(creator)

    def shutdown(self) -> None:
        if self.running:
            unwatch = self.host.finder.unwatch
            watcher = self._socket_watcher_name()
            for creator in self._socket_creators:
                unwatch(watcher, creator)
            self.driver.close()
        super().shutdown()

    def xrl_close_udp(self, creator, ifname, port) -> None:
        self._require_relay().close_udp(creator, ifname, port)

    def xrl_send_udp(self, ifname, dst, port, payload) -> None:
        relay = self._require_relay()
        interface = self.ifmgr.find(ifname)
        if interface is None or not interface.enabled:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"interface {ifname!r} is missing or down",
            )
        relay.send_udp(ifname, interface.addr, dst, port, payload)

    def _notify_recv_udp(self, creator: str, ifname: str, src: IPv4,
                         port: int, payload: bytes) -> None:
        args = (XrlArgs().add_txt("ifname", ifname).add_ipv4("src", src)
                .add_u32("port", port).add_binary("payload", payload))
        xrl = Xrl(creator, "fea_rawpkt_client4", "1.0", "recv_udp", args)
        self.xrl.send(xrl)

    # -- fea_mfib/1.0 (PIM installs multicast routes directly, Figure 1) -----
    def xrl_add_mfc4(self, source, group, iif, oifs) -> None:
        key = (source.to_int(), group.to_int())
        oif_tuple = tuple(o for o in oifs.split(",") if o)
        self.mfib[key] = MfcEntry(source, group, iif, oif_tuple)

    def xrl_delete_mfc4(self, source, group) -> None:
        self.mfib.pop((source.to_int(), group.to_int()), None)

    # -- common/0.1 ---------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-fea/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)
