"""Raw packet I/O relayed through the FEA (paper §7).

Routing protocols never touch the network directly: they ask the FEA to
open a UDP endpoint on an interface and to send datagrams, and the FEA
calls them back (``fea_rawpkt_client4/1.0``) when packets arrive.  "This
adds a small cost to networked communication, but as routing protocols are
rarely high-bandwidth, this is not a problem in practice."

The FEA is parameterised over a :class:`PacketIO` backend: the simulated
network provides one wired to links; tests use :class:`LoopbackPacketIO`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net import IPv4

#: delivery callback the FEA installs: (ifname, src, port, payload)
DeliveryCallback = Callable[[str, IPv4, int, bytes], None]


class PacketIO:
    """Abstract datagram backend for one router's FEA."""

    def bind(self, deliver: DeliveryCallback) -> None:
        """Install the callback for inbound datagrams."""
        raise NotImplementedError

    def send(self, ifname: str, src: IPv4, dst: IPv4, port: int,
             payload: bytes) -> None:
        """Transmit one datagram out of *ifname*."""
        raise NotImplementedError


class LoopbackPacketIO(PacketIO):
    """Test backend: every sent datagram is delivered back locally."""

    def __init__(self, loop=None):
        self._deliver: Optional[DeliveryCallback] = None
        self._loop = loop
        self.sent: List[Tuple[str, IPv4, IPv4, int, bytes]] = []

    def bind(self, deliver: DeliveryCallback) -> None:
        self._deliver = deliver

    def send(self, ifname: str, src: IPv4, dst: IPv4, port: int,
             payload: bytes) -> None:
        self.sent.append((ifname, src, dst, port, payload))
        if self._deliver is None:
            return
        if self._loop is not None:
            self._loop.call_soon(self._deliver, ifname, src, port, payload)
        else:
            self._deliver(ifname, src, port, payload)


class RawSocketRelay:
    """The FEA-side table of protocol-opened UDP endpoints."""

    def __init__(self, packet_io: PacketIO):
        self._io = packet_io
        #: (ifname, port) -> creator target name
        self._open: Dict[Tuple[str, int], str] = {}
        self._io.bind(self._on_packet)
        self._notify: Optional[Callable[[str, str, IPv4, int, bytes], None]] = None
        self.packets_relayed_in = 0
        self.packets_relayed_out = 0

    def set_notifier(self, notify: Callable[[str, str, IPv4, int, bytes], None]
                     ) -> None:
        """*notify(creator, ifname, src, port, payload)* forwards inbound
        datagrams to the owning protocol process (via XRL in the FEA)."""
        self._notify = notify

    def open_udp(self, creator: str, ifname: str, port: int) -> None:
        key = (ifname, port)
        owner = self._open.get(key)
        if owner is not None and owner != creator:
            raise ValueError(
                f"udp {ifname}:{port} already opened by {owner!r}"
            )
        self._open[key] = creator

    def close_all(self, creator: str) -> list:
        """Close every socket *creator* opened; return the (if, port) keys.

        Run when the creator process dies: its sockets must not keep
        swallowing (and mis-delivering) packets after it is gone.
        """
        closed = [key for key, owner in self._open.items()
                  if owner == creator]
        for key in closed:
            del self._open[key]
        return closed

    def close_udp(self, creator: str, ifname: str, port: int) -> None:
        key = (ifname, port)
        if self._open.get(key) == creator:
            del self._open[key]

    def is_open(self, ifname: str, port: int) -> bool:
        return (ifname, port) in self._open

    def send_udp(self, ifname: str, src: IPv4, dst: IPv4, port: int,
                 payload: bytes) -> None:
        self.packets_relayed_out += 1
        self._io.send(ifname, src, dst, port, payload)

    def _on_packet(self, ifname: str, src: IPv4, port: int,
                   payload: bytes) -> None:
        creator = self._open.get((ifname, port))
        if creator is None:
            return  # no listener: drop, as a kernel would
        self.packets_relayed_in += 1
        if self._notify is not None:
            self._notify(creator, ifname, src, port, payload)
