"""PIM-SM-lite multicast routing (paper §3, Figure 1).

    "PIM contributes routes not to the RIB, but directly via the FEA to
    the forwarding engine. ... However, PIM does use the RIB's routing
    information to decide on the reverse path back to a multicast source."
"""

from repro.pim.pim import PimProcess

__all__ = ["PimProcess"]
