"""PIM-SM-lite: (*, G) state driven by IGMP, RPF via RIB registration.

This implements the control-plane relationships the paper's Figure 1
draws for multicast:

* group membership arrives from the IGMP process
  (``mld6igmp_client/0.1`` notifications);
* the reverse path towards the rendezvous point is resolved through the
  RIB's *interest registration* (§5.2.1) — the same mechanism BGP uses for
  nexthops — and re-resolved on ``route_info_invalid4``;
* multicast forwarding entries go **directly to the FEA** (``fea_mfib``),
  bypassing the RIB.

Inter-router PIM Join/Prune messaging is out of scope (see DESIGN.md);
the per-router state machine and all three process couplings are real.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.process import Host, XorpProcess
from repro.interfaces import (
    COMMON_IDL,
    MLD6IGMP_CLIENT_IDL,
    PIM_IDL,
    RIB_CLIENT_IDL,
)
from repro.net import IPNet, IPv4
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl


class GroupState:
    """(*, G) state: output interfaces and the RPF path to the RP."""

    __slots__ = ("group", "rp", "oifs", "iif", "rpf_subnet", "installed")

    def __init__(self, group: IPv4, rp: Optional[IPv4]):
        self.group = group
        self.rp = rp
        self.oifs: Set[str] = set()
        self.iif: str = ""
        self.rpf_subnet: Optional[IPNet] = None
        self.installed = False

    def __repr__(self) -> str:
        return (f"GroupState({self.group} rp={self.rp} iif={self.iif!r} "
                f"oifs={sorted(self.oifs)})")


class PimProcess(XorpProcess):
    """PIM-SM-lite as a XORP process."""

    process_name = "pim"

    def __init__(self, host: Host, *, rib_target: str = "rib",
                 fea_target: str = "fea"):
        super().__init__(host)
        self.rib_target = rib_target
        self.fea_target = fea_target
        self.xrl = self.create_router("pim", singleton=True)
        #: RP set: group prefix -> RP address (most specific prefix wins)
        self.rp_set: List[Tuple[IPNet, IPv4]] = []
        self.groups: Dict[int, GroupState] = {}
        self.xrl.bind(PIM_IDL, self)
        self.xrl.bind(MLD6IGMP_CLIENT_IDL, self)
        self.xrl.bind(RIB_CLIENT_IDL, self)
        self.xrl.bind(COMMON_IDL, self)

    # -- RP set --------------------------------------------------------------
    def rp_for(self, group: IPv4) -> Optional[IPv4]:
        best: Optional[Tuple[IPNet, IPv4]] = None
        for prefix, rp in self.rp_set:
            if prefix.contains_addr(group):
                if best is None or prefix.prefix_len > best[0].prefix_len:
                    best = (prefix, rp)
        return best[1] if best is not None else None

    def xrl_set_rp(self, group_prefix, rp) -> None:
        if not group_prefix.network.is_multicast() and not group_prefix.is_default():
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"{group_prefix} is not a multicast prefix",
            )
        self.rp_set = [(p, r) for p, r in self.rp_set if p != group_prefix]
        self.rp_set.append((group_prefix, rp))
        # Existing groups may map to the new RP.
        for state in self.groups.values():
            fresh_rp = self.rp_for(state.group)
            if fresh_rp != state.rp:
                state.rp = fresh_rp
                self._resolve_rpf(state)

    # -- membership notifications from IGMP ------------------------------------
    def xrl_membership_change4(self, ifname: str, group, joined: bool) -> None:
        if joined:
            self._join(ifname, group)
        else:
            self._prune(ifname, group)

    def xrl_join_group4(self, ifname: str, group) -> None:
        self._join(ifname, group)

    def xrl_leave_group4(self, ifname: str, group) -> None:
        self._prune(ifname, group)

    def _join(self, ifname: str, group: IPv4) -> None:
        state = self.groups.get(group.to_int())
        if state is None:
            state = GroupState(group, self.rp_for(group))
            self.groups[group.to_int()] = state
        if ifname in state.oifs:
            return
        state.oifs.add(ifname)
        if state.rp is None:
            return  # no RP configured: cannot build the tree yet
        if not state.iif:
            self._resolve_rpf(state)
        else:
            self._install(state)

    def _prune(self, ifname: str, group: IPv4) -> None:
        state = self.groups.get(group.to_int())
        if state is None or ifname not in state.oifs:
            return
        state.oifs.discard(ifname)
        if state.oifs:
            self._install(state)
            return
        # Last receiver gone: tear the entry down.
        if state.installed:
            args = (XrlArgs().add_ipv4("source", state.rp or IPv4(0))
                    .add_ipv4("group", state.group))
            self.xrl.send(Xrl(self.fea_target, "fea_mfib", "1.0",
                              "delete_mfc4", args))
        if state.rpf_subnet is not None:
            dereg = (XrlArgs().add_txt("target", self.xrl.class_name)
                     .add_ipv4net("subnet", state.rpf_subnet))
            self.xrl.send(Xrl(self.rib_target, "rib", "1.0",
                              "deregister_interest4", dereg))
        del self.groups[state.group.to_int()]

    # -- RPF resolution through the RIB ----------------------------------------
    def _resolve_rpf(self, state: GroupState) -> None:
        if state.rp is None:
            return
        args = (XrlArgs().add_txt("target", self.xrl.class_name)
                .add_ipv4("addr", state.rp))
        xrl = Xrl(self.rib_target, "rib", "1.0", "register_interest4", args)

        def completion(error, response) -> None:
            if not error.is_okay:
                return
            state.rpf_subnet = response.get_ipv4net("subnet")
            if response.get_bool("resolves"):
                # The RPF interface towards the RP: ask the FEA's FIB.
                self._lookup_rpf_interface(state)
            else:
                state.iif = ""

        self.xrl.send(xrl, completion)

    def _lookup_rpf_interface(self, state: GroupState) -> None:
        args = XrlArgs().add_ipv4("addr", state.rp)
        xrl = Xrl(self.fea_target, "fea_fib", "1.0", "lookup_entry4", args)

        def completion(error, response) -> None:
            if not error.is_okay or not response.get_bool("resolves"):
                return
            state.iif = response.get_txt("ifname")
            self._install(state)

        self.xrl.send(xrl, completion)

    # -- rib_client/0.1: routing changed under our RPF cache --------------------
    def xrl_route_info_invalid4(self, subnet) -> None:
        """Paper: PIM monitors "routing changes that affect ... PIM
        Rendezvous-Point routers" via the RIB registration machinery."""
        for state in self.groups.values():
            if (state.rpf_subnet is not None
                    and state.rpf_subnet.overlaps(subnet)):
                state.rpf_subnet = None
                self._resolve_rpf(state)

    # -- MFC installation -------------------------------------------------------
    def _install(self, state: GroupState) -> None:
        if not state.iif or not state.oifs:
            return
        args = (XrlArgs().add_ipv4("source", state.rp or IPv4(0))
                .add_ipv4("group", state.group)
                .add_txt("iif", state.iif)
                .add_txt("oifs", ",".join(sorted(state.oifs))))
        state.installed = True
        self.xrl.send(Xrl(self.fea_target, "fea_mfib", "1.0",
                          "add_mfc4", args))

    # -- common/0.1 ------------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-pim/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)
