"""Route redistribution stages (paper §3, §5.2).

    "A key instrument of routing policy is the process of route
    redistribution, where routes from one routing protocol that match
    certain policy filters are redistributed into another routing protocol
    for advertisement to other routers.  The RIB, as the one part of the
    system that sees everyone's routes, is central to this process."

A :class:`RedistStage` is a dynamic stage inserted when a watcher
registers.  Each target supplies a predicate (typically "protocol ==
X" or a compiled policy filter); matching winners are announced to the
target via a callback, including an initial dump of pre-existing routes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.stages import RouteTableStage
from repro.net import IPNet
from repro.trie import RouteTrie

#: redistribution event callback: (event, route) with event "add"|"delete"
RedistCallback = Callable[[str, Any], None]


class _RedistTarget:
    __slots__ = ("name", "predicate", "callback", "announced")

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 callback: RedistCallback, bits: int):
        self.name = name
        self.predicate = predicate
        self.callback = callback
        #: which prefixes this target currently knows (for clean deletes
        #: when a replace changes whether the predicate matches)
        self.announced = RouteTrie(bits)


class RedistStage(RouteTableStage):
    def __init__(self, name: str, bits: int = 32):
        super().__init__(name)
        self.bits = bits
        self.winners = RouteTrie(bits)
        self._targets: Dict[str, _RedistTarget] = {}

    # -- target management -------------------------------------------------
    def add_target(self, name: str, predicate: Callable[[Any], bool],
                   callback: RedistCallback) -> None:
        """Register a redistribution target; dumps existing winners."""
        target = _RedistTarget(name, predicate, callback, self.bits)
        self._targets[name] = target
        for net, route in self.winners.items():
            self._offer(target, route)

    def remove_target(self, name: str) -> None:
        self._targets.pop(name, None)

    def resync_target(self, name: str) -> None:
        """Re-dump every winner to *name* (its consumer was restarted).

        The reborn consumer has empty state, so the announced-trie is
        rebuilt from scratch rather than diffed against it.
        """
        target = self._targets.get(name)
        if target is None:
            return
        target.announced = RouteTrie(self.bits)
        for __, route in self.winners.items():
            self._offer(target, route)

    def has_target(self, name: str) -> bool:
        return name in self._targets

    def _offer(self, target: _RedistTarget, route: Any) -> None:
        if target.predicate(route):
            target.announced.insert(route.net, route)
            target.callback("add", route)

    def _rescind(self, target: _RedistTarget, route: Any) -> None:
        known = target.announced.discard(route.net)
        if known is not None:
            target.callback("delete", known)

    # -- message handling ------------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(route.net, route)
        for target in self._targets.values():
            self._offer(target, route)
        super().add_route(route, caller=caller)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        # Per-route winner/target bookkeeping, one downstream dispatch.
        targets = self._targets.values()
        insert = self.winners.insert
        for route in routes:
            insert(route.net, route)
            for target in targets:
                self._offer(target, route)
        if self.next_table is not None:
            self.next_table.add_routes(routes, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        self.winners.discard(route.net)
        for target in self._targets.values():
            self._rescind(target, route)
        super().delete_route(route, caller=caller)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        targets = self._targets.values()
        discard = self.winners.discard
        for route in routes:
            discard(route.net)
            for target in targets:
                self._rescind(target, route)
        if self.next_table is not None:
            self.next_table.delete_routes(routes, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(new_route.net, new_route)
        for target in self._targets.values():
            matched_before = target.announced.exact(old_route.net) is not None
            matches_now = target.predicate(new_route)
            if matched_before and matches_now:
                target.announced.insert(new_route.net, new_route)
                target.callback("delete", old_route)
                target.callback("add", new_route)
            elif matched_before:
                self._rescind(target, old_route)
            elif matches_now:
                self._offer(target, new_route)
        super().replace_route(old_route, new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        return self.winners.exact(net)
