"""``python -m repro.rib`` — the RIB as a standalone OS process."""

import sys
from typing import List, Optional

from repro.core.runtime import ChildRuntime, base_parser
from repro.rib import RibProcess


def main(argv: Optional[List[str]] = None) -> None:
    args = base_parser("repro.rib").parse_args(argv)
    runtime = ChildRuntime(args.finder, codec=args.codec)
    RibProcess(runtime.host)
    runtime.install_signal_handlers()
    runtime.run()


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    main(sys.argv[1:])
