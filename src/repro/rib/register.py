"""Interest registration — paper §5.2.1 and Figure 8.

    "when BGP asks the RIB about a specific address, the RIB informs BGP
    about the address range for which the same answer applies. ... the RIB
    computes the largest enclosing subnet that is not overlayed by a more
    specific route and tells BGP that its answer is valid for this subset
    of addresses only.  Should the situation change at any later stage,
    the RIB will send a 'cache invalidated' message for the relevant
    subnet."

Because no valid-subnet ever overlaps another, clients can cache answers
in balanced trees / sorted arrays for fast lookup (see
:class:`repro.bgp.nexthop.NexthopCache`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.stages import RouteTableStage
from repro.net import IPNet
from repro.trie import RouteTrie

#: invalidation callback: (client_name, valid_subnet)
InvalidateCallback = Callable[[str, IPNet], None]


class Registration:
    """One registered valid-subnet and the clients depending on it."""

    __slots__ = ("subnet", "clients", "covering_net")

    def __init__(self, subnet: IPNet, covering_net: Optional[IPNet]):
        self.subnet = subnet
        self.clients: Set[str] = set()
        #: the route prefix that produced the answer (None = "no route")
        self.covering_net = covering_net


class RegisterStage(RouteTableStage):
    """Tracks winners, answers interest registrations, fires invalidations."""

    def __init__(self, name: str, bits: int = 32,
                 invalidate_cb: Optional[InvalidateCallback] = None):
        super().__init__(name)
        self.bits = bits
        self.winners = RouteTrie(bits)
        self.registrations = RouteTrie(bits)
        self.invalidate_cb = invalidate_cb

    # -- registration (called via the rib/1.0 XRL interface) ----------------
    def register_interest(self, client: str,
                          addr) -> Tuple[IPNet, Optional[Any]]:
        """Register *client*'s interest in *addr*.

        Returns ``(valid_subnet, route-or-None)``: the answer and the
        subnet of addresses for which the same answer applies.
        """
        match = self.winners.best_match(addr)
        covering_net = match[0] if match is not None else None
        subnet = self._valid_subnet(addr, covering_net)
        existing = self.registrations.exact(subnet)
        if existing is None:
            existing = Registration(subnet, covering_net)
            self.registrations.insert(subnet, existing)
        existing.clients.add(client)
        return subnet, (match[1] if match is not None else None)

    def deregister_interest(self, client: str, subnet: IPNet) -> bool:
        entry = self.registrations.exact(subnet)
        if entry is None:
            return False
        entry.clients.discard(client)
        if not entry.clients:
            self.registrations.discard(subnet)
        return True

    def _valid_subnet(self, addr, covering_net: Optional[IPNet]) -> IPNet:
        """The largest enclosing subnet not overlaid by a more specific route.

        Start from the matched prefix (or the default prefix when there is
        no route at all) and repeatedly halve towards *addr* while any
        more-specific route overlaps the candidate subnet.
        """
        if covering_net is not None:
            subnet = covering_net
            floor_len = covering_net.prefix_len
        else:
            subnet = IPNet(type(addr).zero(), 0)
            floor_len = -1
        while subnet.prefix_len < self.bits:
            if not self._overlaid(subnet, floor_len):
                return subnet
            subnet = subnet.half_containing(addr)
        return subnet

    def _overlaid(self, subnet: IPNet, floor_len: int) -> bool:
        """Any route strictly more specific than *floor_len* inside *subnet*?"""
        for net, __ in self.winners.covered(subnet):
            if net.prefix_len > floor_len:
                return True
        return False

    # -- invalidation on route churn ---------------------------------------
    def _invalidate_overlapping(self, net: IPNet) -> None:
        victims: List[Registration] = [
            entry for __, entry in self.registrations.covered(net)
        ]
        for reg_net, entry in self.registrations.covering(net):
            if entry not in victims:
                victims.append(entry)
        discard = self.registrations.discard
        for entry in victims:
            discard(entry.subnet)
            if self.invalidate_cb is not None:
                for client in sorted(entry.clients):
                    self.invalidate_cb(client, entry.subnet)

    # -- message handling -----------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(route.net, route)
        self._invalidate_overlapping(route.net)
        super().add_route(route, caller=caller)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        insert = self.winners.insert
        for route in routes:
            insert(route.net, route)
            self._invalidate_overlapping(route.net)
        if self.next_table is not None:
            self.next_table.add_routes(routes, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        self.winners.discard(route.net)
        self._invalidate_overlapping(route.net)
        super().delete_route(route, caller=caller)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        discard = self.winners.discard
        for route in routes:
            discard(route.net)
            self._invalidate_overlapping(route.net)
        if self.next_table is not None:
            self.next_table.delete_routes(routes, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        self.winners.insert(new_route.net, new_route)
        self._invalidate_overlapping(new_route.net)
        super().replace_route(old_route, new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        return self.winners.exact(net)

    def lookup_by_dest(self, addr) -> Optional[Any]:
        """Longest-prefix-match over current winners (rib lookup XRL)."""
        match = self.winners.best_match(addr)
        return match[1] if match is not None else None
