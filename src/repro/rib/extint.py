"""The ExtInt stage: compose external routes with internal routes.

    "... an ExtInt Stage, which composes a set of external routes with a
    set of internal routes."  (paper §5.2, Figure 7)

Figure 7 draws ExtInt with **two** upstream sides — the external (EGP)
merge chain and the internal (IGP) merge chain — and that structure is
load-bearing: an external route with the best administrative distance may
still be *unusable* because its nexthop does not resolve through any
internal route, in which case the internal alternative must win.  A
single merged chain would swallow that alternative before ExtInt could
see it (a bug our property tests caught in an earlier design).

The stage mirrors each side's winners, gates external candidates on
nexthop resolvability through the internal side, picks the final winner
by administrative preference, and keeps downstream consistent as routes
and resolvability change.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.stages import RouteTableStage
from repro.net import IPNet
from repro.rib.route import preferred
from repro.trie import RouteTrie


class ExtIntStage(RouteTableStage):
    def __init__(self, name: str, bits: int = 32):
        super().__init__(name)
        self.bits = bits
        #: internal-side winners by prefix (the resolution substrate)
        self.internal = RouteTrie(bits)
        #: external-side winners by prefix (announced only if resolvable)
        self.external = RouteTrie(bits)
        #: everything announced downstream (consistency rule 2 source)
        self.announced = RouteTrie(bits)
        #: nexthop address -> set of external prefixes using it
        self._nexthop_index: Dict[Any, Set[IPNet]] = {}
        #: batch emission buffer; None outside add_routes/delete_routes
        self._emissions: Optional[List[Tuple[str, Any, Any]]] = None

    # -- helpers ------------------------------------------------------------
    def _resolves(self, route: Any) -> bool:
        return self.internal.best_match(route.nexthop) is not None

    @property
    def unresolved(self) -> Dict[IPNet, Any]:
        """External routes currently held for lack of a resolvable nexthop."""
        return {net: route for net, route in self.external.items()
                if not self._resolves(route)}

    def _index_add(self, route: Any) -> None:
        self._nexthop_index.setdefault(route.nexthop, set()).add(route.net)

    def _index_remove(self, route: Any) -> None:
        nets = self._nexthop_index.get(route.nexthop)
        if nets is not None:
            nets.discard(route.net)
            if not nets:
                del self._nexthop_index[route.nexthop]

    # -- emission (direct, or buffered during a batch) ----------------------
    def _emit(self, op: str, route: Any, old_route: Any = None) -> None:
        if self._emissions is not None:
            self._emissions.append((op, route, old_route))
            return
        if self.next_table is None:
            return
        if op == "add":
            self.next_table.add_route(route, caller=self)
        elif op == "delete":
            self.next_table.delete_route(route, caller=self)
        else:
            self.next_table.replace_route(old_route, route, caller=self)

    def _flush_emissions(self, emissions: List[Tuple[str, Any, Any]]) -> None:
        """Replay buffered emissions in order, grouping runs of same-op
        add/delete into one downstream batch each."""
        if self.next_table is None:
            return
        run_op: Optional[str] = None
        run: List[Any] = []

        next_table = self.next_table

        def flush_run() -> None:
            nonlocal run_op, run
            if not run:
                return
            if run_op == "add":
                next_table.add_routes(run, caller=self)
            else:
                next_table.delete_routes(run, caller=self)
            run_op, run = None, []

        for op, route, old_route in emissions:
            if op == "replace":
                flush_run()
                next_table.replace_route(old_route, route, caller=self)
                continue
            if op != run_op:
                flush_run()
                run_op = op
            run.append(route)
        flush_run()

    # -- winner computation -------------------------------------------------
    def _reevaluate(self, net: IPNet) -> None:
        external = self.external.exact(net)
        if external is not None and not self._resolves(external):
            external = None  # unusable: the internal alternative may win
        internal = self.internal.exact(net)
        winner = preferred(external, internal)
        current = self.announced.exact(net)
        if winner is None:
            if current is not None:
                self.announced.discard(net)
                self._emit("delete", current)
            return
        if current is None:
            self.announced.insert(net, winner)
            self._emit("add", winner)
        elif current is not winner:
            self.announced.insert(net, winner)
            self._emit("replace", winner, current)

    def _reevaluate_externals_for(self, changed_net: IPNet) -> None:
        """Internal routing under *changed_net* changed: resolvability of
        any external nexthop inside it may have flipped."""
        affected = [
            nexthop for nexthop in self._nexthop_index
            if changed_net.contains_addr(nexthop)
        ]
        index_get = self._nexthop_index.get
        for nexthop in affected:
            for net in list(index_get(nexthop, ())):
                self._reevaluate(net)

    # -- message handling (routes classify themselves via is_external) --------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        if route.is_external:
            self.external.insert(route.net, route)
            self._index_add(route)
            self._reevaluate(route.net)
        else:
            self.internal.insert(route.net, route)
            self._reevaluate(route.net)
            self._reevaluate_externals_for(route.net)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        self._batch(self.add_route, routes)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        if route.is_external:
            self.external.discard(route.net)
            self._index_remove(route)
            self._reevaluate(route.net)
        else:
            self.internal.discard(route.net)
            self._reevaluate(route.net)
            self._reevaluate_externals_for(route.net)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        self._batch(self.delete_route, routes)

    def _batch(self, singular: Any, routes: List[Any]) -> None:
        """Run *singular* per route with emissions buffered, then flush the
        buffer as segment-grouped downstream batches."""
        if self._emissions is not None:  # nested batch: keep outer buffer
            for route in routes:
                singular(route)
            return
        self._emissions = []
        try:
            for route in routes:
                singular(route)
        finally:
            emissions, self._emissions = self._emissions, None
        self._flush_emissions(emissions)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        if old_route.is_external != new_route.is_external:
            # Cannot happen with split ext/int sides, but stay safe.
            self.delete_route(old_route, caller=caller)
            self.add_route(new_route, caller=caller)
            return
        if new_route.is_external:
            self._index_remove(old_route)
            self.external.insert(new_route.net, new_route)
            self._index_add(new_route)
            self._reevaluate(new_route.net)
        else:
            self.internal.insert(new_route.net, new_route)
            self._reevaluate(new_route.net)
            self._reevaluate_externals_for(new_route.net)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        return self.announced.exact(net)
