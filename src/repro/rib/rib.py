"""The RIB process: stages wired together plus the ``rib/1.0`` XRL target.

Figure 7 of the paper, as code: origin tables feed a chain of pairwise
merge stages, then the ExtInt stage, then redistribution and registration
watchers, and finally a distributor that streams winning routes to the FEA
over pipelined XRLs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.process import Host, XorpProcess
from repro.core.stages import OriginStage, RouteTableStage
from repro.core.txqueue import XrlTransmitQueue
from repro.interfaces import (
    COMMON_IDL,
    REDIST4_IDL,
    RIB_CLIENT_IDL,
    RIB_IDL,
)
from repro.net import IPNet, IPv4, IPv6
from repro.profiler import PROFILER_IDL, Profiler
from repro.rib.extint import ExtIntStage
from repro.rib.flow import FeaFlowController
from repro.rib.merge import MergeStage
from repro.rib.redist import RedistStage
from repro.rib.register import RegisterStage
from repro.rib.route import ADMIN_DISTANCES, RibRoute
from repro.xrl import XrlArgs, XrlAtom, XrlAtomType, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl


class _FeaDistributorStage(RouteTableStage):
    """Terminal stage: pushes winning routes towards the forwarding engine."""

    def __init__(self, name: str, emit, emit_batch=None):
        super().__init__(name)
        self._emit = emit  # emit(op, route, batching=False)
        #: emit_batch(op, routes) — one vectorized XRL per segment; when
        #: absent, a batch decomposes into singular emits with the wire
        #: coalescing hint set.
        self._emit_batch = emit_batch

    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        self._emit("add", route)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        if self._emit_batch is not None:
            self._emit_batch("add", list(routes))
            return
        # The batch hint lets the emitter coalesce the resulting XRLs
        # into one wire flush (they share the event-loop turn anyway).
        for route in routes:
            self._emit("add", route, batching=True)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        self._emit("delete", route)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        if self._emit_batch is not None:
            self._emit_batch("delete", list(routes))
            return
        for route in routes:
            self._emit("delete", route, batching=True)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        # A FIB insert overwrites, so a replace is a single add entry.
        self._emit("add", new_route)


class _Pipeline:
    """One address family's stage network inside the RIB."""

    def __init__(self, bits: int, tag: str, emit_fea, invalidate_cb,
                 emit_fea_batch=None):
        self.bits = bits
        self.tag = tag
        self.origins: Dict[str, OriginStage] = {}
        self.external_protocols: Dict[str, bool] = {}
        #: two upstream sides, as in paper Figure 7: IGP and EGP folds
        self.head_int: Optional[RouteTableStage] = None
        self.head_ext: Optional[RouteTableStage] = None
        self.extint = ExtIntStage(f"extint{tag}", bits)
        self.redist = RedistStage(f"redist{tag}", bits)
        self.register = RegisterStage(f"register{tag}", bits,
                                      invalidate_cb=invalidate_cb)
        self.fea_sink = _FeaDistributorStage(f"to-fea{tag}", emit_fea,
                                             emit_fea_batch)
        RouteTableStage.plumb(self.extint, self.redist, self.register,
                              self.fea_sink)
        self._merge_count = 0

    def add_origin(self, protocol: str, external: bool) -> OriginStage:
        existing = self.origins.get(protocol)
        if existing is not None:
            return existing
        origin = OriginStage(f"origin-{protocol}{self.tag}", self.bits)
        self.origins[protocol] = origin
        self.external_protocols[protocol] = external
        side = "head_ext" if external else "head_int"
        head = getattr(self, side)
        if head is None:
            origin.next_table = self.extint
            setattr(self, side, origin)
            return origin
        # Dynamically splice a new pairwise merge stage above the ExtInt
        # stage — existing flows are untouched because the new branch is
        # empty (paper: dynamic stages, §5.1.2 / §5.2).  External and
        # internal protocols fold on separate sides (Figure 7), so the
        # ExtInt stage always sees both alternatives.
        self._merge_count += 1
        merge = MergeStage(f"merge-{self._merge_count}{self.tag}")
        merge.set_parents(head, origin)
        merge.next_table = self.extint
        setattr(self, side, merge)
        return origin

    def origin(self, protocol: str) -> OriginStage:
        origin = self.origins.get(protocol)
        if origin is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"protocol {protocol!r} has no {self.tag} table in the RIB",
            )
        return origin


class RibProcess(XorpProcess):
    """The RIB as a XORP process."""

    process_name = "rib"

    #: protocols given tables automatically (always present on a router)
    BUILTIN_IGP_TABLES = ("connected", "static")

    def __init__(self, host: Host, *, fea_target: str = "fea",
                 window: int = 100, retry_policy=None, flow_options=None):
        super().__init__(host)
        self.fea_target = fea_target
        self.xrl = self.create_router("rib", singleton=True)
        self.profiler = Profiler(self.loop.clock)
        self._prof_arrive = self.profiler.create("route_arrive_rib")
        self._prof_queued_fea = self.profiler.create("route_queued_fea")
        self._prof_sent_fea = self.profiler.create("route_sent_fea")
        #: opt-in retry for the idempotent FEA/redist route streams
        self.retry_policy = retry_policy
        self.txq = XrlTransmitQueue(self.xrl, window=window,
                                    retry=retry_policy)
        self.txq.register_metrics(self.metrics)
        #: pacing for the FEA-bound stream: reads the queued/congested
        #: pressure signal off every FIB reply and pauses when the
        #: dataplane backend falls behind.
        self.flow = FeaFlowController(
            self.loop,
            send_segment=self._send_fea_segment,
            poll_status=self._poll_fea_status,
            batch_limit=lambda: self.FEA_BATCH_LIMIT,
            **(flow_options or {}))
        self.flow.register_metrics(self.metrics)
        self.v4 = _Pipeline(32, "4", self._emit_fea4, self._notify_invalid4,
                            self._emit_fea4_batch)
        self.v6 = _Pipeline(128, "6", self._emit_fea6, lambda *a: None,
                            self._emit_fea6_batch)
        self.metrics.gauge("tables4", lambda: len(self.v4.origins))
        self.metrics.gauge("tables6", lambda: len(self.v6.origins))
        add_origin4 = self.v4.add_origin
        add_origin6 = self.v6.add_origin
        for protocol in self.BUILTIN_IGP_TABLES:
            add_origin4(protocol, external=False)
            add_origin6(protocol, external=False)
        self.xrl.bind(RIB_IDL, self)
        self.xrl.bind(PROFILER_IDL, self.profiler)
        self.xrl.bind(COMMON_IDL, self)
        self._redist_targets: Dict[str, str] = {}
        #: redist consumer classes we watch; value = death seen, resync due
        self._redist_down: Dict[str, bool] = {}
        self._fea_down = False
        # Watch the FEA's lifetime so a reborn (empty) FIB is re-seeded.
        host.finder.watch(self._watcher_name(), fea_target,
                          self._fea_lifetime)

    # -- FEA distribution ----------------------------------------------------
    # Both families flow through one emit helper into the flow controller,
    # which pumps same-(family, op) runs back out through
    # _send_fea_segment — so v4 and v6 share segmenting, profiling, and
    # the backpressure pacing.

    #: family bits -> (method suffix, net atom type, nexthop atom type)
    _FEA_FAMILY = {
        32: ("4", XrlAtomType.IPV4NET, XrlAtomType.IPV4),
        128: ("6", XrlAtomType.IPV6NET, XrlAtomType.IPV6),
    }

    #: one vectorized XRL carries at most this many routes; larger stage
    #: batches are segmented so a single frame stays bounded.
    FEA_BATCH_LIMIT = 256

    def _emit_fea4(self, op: str, route: Any, batching: bool = False) -> None:
        self._emit_fea(32, op, route, batching)

    def _emit_fea6(self, op: str, route: Any, batching: bool = False) -> None:
        self._emit_fea(128, op, route, batching)

    def _emit_fea(self, family: int, op: str, route: Any,
                  batching: bool) -> None:
        self._prof_queued_fea.log_op(op, route.net)
        self.flow.submit(family, op, route, batching)

    def _emit_fea4_batch(self, op: str, routes: List[Any]) -> None:
        self._emit_fea_batch(32, op, routes)

    def _emit_fea6_batch(self, op: str, routes: List[Any]) -> None:
        self._emit_fea_batch(128, op, routes)

    def _emit_fea_batch(self, family: int, op: str,
                        routes: List[Any]) -> None:
        """A stage batch toward the FEA: one vectorized XRL per segment.

        Semantically identical to per-route :meth:`_emit_fea` calls, in
        order — the FEA unpacks the parallel lists sequentially — but
        amortizes the XRL header, dispatch and reply over the segment.
        """
        if not routes:
            return
        prof = self._prof_queued_fea
        if prof.enabled:
            for route in routes:
                prof.log_op(op, route.net)
        self.flow.submit_batch(family, op, list(routes))

    def _log_sent_fea(self, lines: List[str]) -> None:
        log = self._prof_sent_fea.log
        for line in lines:
            log(line)

    def _send_fea_segment(self, family: int, op: str, routes: List[Any],
                          batching: bool, on_reply) -> None:
        """Transmit one same-op run as a singular or vectorized FIB XRL."""
        __, net_type, nexthop_type = self._FEA_FAMILY[family]
        # Method names stay literal (per family, via the conditional) so
        # the XRL001/XRL002 static conformance checks can resolve them.
        if len(routes) == 1:
            route = routes[0]
            args = XrlArgs().add(XrlAtom("net", net_type, route.net))
            if op == "add":
                args.add(XrlAtom("nexthop", nexthop_type, route.nexthop))
                args.add_txt("ifname", route.ifname)
            method = (("add_entry4" if family == 32 else "add_entry6")
                      if op == "add" else
                      ("delete_entry4" if family == 32 else "delete_entry6"))
            xrl = Xrl(self.fea_target, "fea_fib", "1.0", method, args)
            batch = batching
        else:
            nets = [XrlAtom("net", net_type, route.net) for route in routes]
            if op == "add":
                args = (XrlArgs()
                        .add_list("nets", nets)
                        .add_list("nexthops",
                                  [XrlAtom("nexthop", nexthop_type,
                                           route.nexthop)
                                   for route in routes])
                        .add_list("ifnames",
                                  [XrlAtom("ifname", XrlAtomType.TXT,
                                           route.ifname)
                                   for route in routes]))
            else:
                args = XrlArgs().add_list("nets", nets)
            method = (("add_entries4" if family == 32 else "add_entries6")
                      if op == "add" else
                      ("delete_entries4" if family == 32
                       else "delete_entries6"))
            xrl = Xrl(self.fea_target, "fea_fib", "1.0", method, args)
            batch = True
        if self._prof_sent_fea.enabled:
            # The sent-record strings (and the closure holding them) are
            # only built when the profiling point is collecting.
            lines = [f"{op} {route.net}" for route in routes]
            on_sent = lambda batch_lines=lines: \
                self._log_sent_fea(batch_lines)  # noqa: E731
        else:
            on_sent = None
        self.txq.enqueue(xrl, on_sent=on_sent, on_reply=on_reply,
                         batch=batch)

    def _poll_fea_status(self, on_reply) -> None:
        xrl = Xrl(self.fea_target, "fea_fib", "1.0", "get_queue_status",
                  XrlArgs())
        self.txq.enqueue(xrl, on_reply=on_reply)

    # -- resync after consumer restarts (the DESIGN.md failure model) --------
    def _watcher_name(self) -> str:
        return f"rib-watch:{self.xrl.instance_name}"

    def _fea_lifetime(self, event: str, class_name: str,
                      instance: str) -> None:
        from repro.xrl.finder import BIRTH, DEATH

        if event == DEATH:
            self._fea_down = True
        elif event == BIRTH and self._fea_down and self.running:
            self._fea_down = False
            # The reborn FEA starts from an empty FIB: the backlog (and
            # any congestion pause against the dead incarnation) is
            # superseded by the full-table resync.
            self.flow.reset()
            # Deferred past BIRTH: the reborn FEA binds its interfaces
            # only after registering its component.
            self.loop.call_soon(self.resync_fea)

    def resync_fea(self) -> None:
        """Replay every winning route at a restarted FEA.

        A full-table replay is the canonical burst: the batch hint lets
        the XRL layer coalesce the whole resync into a few wire flushes.
        """
        if not self.running:
            return
        self._emit_fea4_batch(
            "add", [route for __, route in self.v4.redist.winners.items()])
        self._emit_fea6_batch(
            "add", [route for __, route in self.v6.redist.winners.items()])

    def _watch_redist_class(self, target: str) -> None:
        if target in self._redist_down:
            return
        self._redist_down[target] = False
        self.host.finder.watch(
            self._watcher_name(), target,
            lambda event, cls, instance, t=target:
                self._redist_lifetime(t, event))

    def _redist_lifetime(self, target: str, event: str) -> None:
        from repro.xrl.finder import BIRTH, DEATH

        if event == DEATH:
            self._redist_down[target] = True
        elif event == BIRTH and self._redist_down.get(target) \
                and self.running:
            self._redist_down[target] = False
            self.loop.call_soon(self._resync_redist, target)

    def _resync_redist(self, target: str) -> None:
        """Replay redistribution to a reborn consumer process."""
        if not self.running:
            return
        resync = self.v4.redist.resync_target
        for key, key_target in self._redist_targets.items():
            if key_target == target:
                resync(key)

    def shutdown(self) -> None:
        if self.running:
            watcher = self._watcher_name()
            unwatch = self.host.finder.unwatch
            unwatch(watcher, self.fea_target)
            for target in self._redist_down:
                unwatch(watcher, target)
        super().shutdown()

    # -- invalidation notifications (paper §5.2.1) ----------------------------
    def _notify_invalid4(self, client: str, subnet: IPNet) -> None:
        args = XrlArgs().add_ipv4net("subnet", subnet)
        xrl = Xrl(client, "rib_client", "0.1", "route_info_invalid4", args)
        self.xrl.send(xrl)

    # -- rib/1.0 handlers ---------------------------------------------------
    def xrl_add_igp_table4(self, protocol: str) -> None:
        self.v4.add_origin(protocol, external=False)

    def xrl_add_egp_table4(self, protocol: str) -> None:
        self.v4.add_origin(protocol, external=True)

    def xrl_add_igp_table6(self, protocol: str) -> None:
        self.v6.add_origin(protocol, external=False)

    def xrl_add_egp_table6(self, protocol: str) -> None:
        self.v6.add_origin(protocol, external=True)

    def _make_route(self, pipeline: _Pipeline, protocol: str, net: IPNet,
                    nexthop, metric: int, policytags) -> RibRoute:
        tags = [atom.value for atom in policytags] if policytags else []
        return RibRoute(
            net, nexthop, metric, protocol,
            is_external=pipeline.external_protocols.get(protocol, False),
            policytags=tags,
        )

    def xrl_flush_table4(self, protocol: str) -> None:
        """Withdraw every route a (dead) protocol left behind.

        The supervisor calls this on module death so stale routes do not
        outlive their owner (§3: "the FEA will know precisely which
        routes ... need to be removed").  Unknown protocols are a no-op —
        the module may have died before creating its tables.
        """
        origin = self.v4.origins.get(protocol)
        if origin is None:
            return
        origin.withdraw_batch([net for net, __ in origin.routes.items()])

    def xrl_add_route4(self, protocol, net, nexthop, metric, policytags) -> None:
        self._prof_arrive.log_op("add", net)
        origin = self.v4.origin(protocol)
        route = self._make_route(self.v4, protocol, net, nexthop, metric,
                                 policytags)
        origin.originate(route)

    def xrl_replace_route4(self, protocol, net, nexthop, metric,
                           policytags) -> None:
        self._prof_arrive.log_op("replace", net)
        self.xrl_add_route4(protocol, net, nexthop, metric, policytags)

    def xrl_delete_route4(self, protocol, net) -> None:
        self._prof_arrive.log_op("delete", net)
        origin = self.v4.origin(protocol)
        if origin.withdraw_if_present(net) is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"no {protocol} route for {net}",
            )

    def xrl_add_route6(self, protocol, net, nexthop, metric, policytags) -> None:
        origin = self.v6.origin(protocol)
        route = self._make_route(self.v6, protocol, net, nexthop, metric,
                                 policytags)
        origin.originate(route)

    def xrl_replace_route6(self, protocol, net, nexthop, metric,
                           policytags) -> None:
        self.xrl_add_route6(protocol, net, nexthop, metric, policytags)

    def xrl_delete_route6(self, protocol, net) -> None:
        origin = self.v6.origin(protocol)
        if origin.withdraw_if_present(net) is None:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED,
                f"no {protocol} route for {net}",
            )

    def xrl_lookup_route_by_dest4(self, addr) -> dict:
        route = self.v4.register.lookup_by_dest(addr)
        if route is None:
            return {"resolves": False, "net": IPNet(IPv4(0), 0),
                    "nexthop": IPv4(0), "metric": 0, "admin_distance": 255,
                    "protocol": ""}
        return {"resolves": True, "net": route.net, "nexthop": route.nexthop,
                "metric": route.metric,
                "admin_distance": route.admin_distance,
                "protocol": route.protocol}

    def xrl_register_interest4(self, target, addr) -> dict:
        subnet, route = self.v4.register.register_interest(target, addr)
        if route is None:
            return {"resolves": False, "net": IPNet(IPv4(0), 0),
                    "subnet": subnet, "nexthop": IPv4(0), "metric": 0,
                    "admin_distance": 255}
        return {"resolves": True, "net": route.net, "subnet": subnet,
                "nexthop": route.nexthop, "metric": route.metric,
                "admin_distance": route.admin_distance}

    def xrl_deregister_interest4(self, target, subnet) -> None:
        self.v4.register.deregister_interest(target, subnet)

    def xrl_redist_enable4(self, target: str, from_protocol: str) -> None:
        key = f"{target}:{from_protocol}"
        if self.v4.redist.has_target(key):
            return
        self._redist_targets[key] = target
        self._watch_redist_class(target)
        self.v4.redist.add_target(
            key,
            predicate=lambda route: route.protocol == from_protocol,
            callback=lambda op, route: self._emit_redist4(target, op, route),
        )

    def xrl_redist_disable4(self, target: str, from_protocol: str) -> None:
        key = f"{target}:{from_protocol}"
        self.v4.redist.remove_target(key)
        self._redist_targets.pop(key, None)

    def _emit_redist4(self, target: str, op: str, route: Any) -> None:
        if op == "add":
            args = (XrlArgs().add_ipv4net("net", route.net)
                    .add_ipv4("nexthop", route.nexthop)
                    .add_u32("metric", route.metric)
                    .add_u32("admin_distance", route.admin_distance)
                    .add_txt("protocol", route.protocol)
                    .add_list("policytags", _tag_atoms(route.policytags)))
            xrl = Xrl(target, "redist4", "0.1", "redist_add_route4", args)
        else:
            args = (XrlArgs().add_ipv4net("net", route.net)
                    .add_txt("protocol", route.protocol))
            xrl = Xrl(target, "redist4", "0.1", "redist_delete_route4", args)
        self.txq.enqueue(xrl)

    def xrl_get_protocol_admin_distance(self, protocol: str) -> dict:
        return {"admin_distance":
                ADMIN_DISTANCES.get(protocol, ADMIN_DISTANCES["unknown"])}

    # -- common/0.1 ----------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-rib/1.0"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)


def _tag_atoms(tags):
    from repro.xrl.types import XrlAtom, XrlAtomType

    return [XrlAtom(f"tag{i}", XrlAtomType.U32, tag)
            for i, tag in enumerate(tags)]
