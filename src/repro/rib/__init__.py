"""The Routing Information Base process (paper §3, §5.2).

    "The RIB serves as the plumbing between routing protocols. ... As
    multiple protocols can supply different routes to the same destination
    subnet, the RIB must arbitrate between alternatives."

Like BGP, the RIB is a network of stages (paper Figure 7): origin tables
(one per protocol) feed pairwise :class:`MergeStage` decisions based on
administrative distance, an :class:`ExtIntStage` composes external routes
with internal ones (resolving external nexthops), and dynamic
:class:`RedistStage` / :class:`RegisterStage` watchers redistribute routes
and answer interest registrations (§5.2.1) on the way to the forwarding
engine.
"""

from repro.rib.route import ADMIN_DISTANCES, RibRoute, preferred
from repro.rib.merge import MergeStage
from repro.rib.extint import ExtIntStage
from repro.rib.redist import RedistStage
from repro.rib.register import RegisterStage, Registration
from repro.rib.rib import RibProcess

__all__ = [
    "ADMIN_DISTANCES",
    "ExtIntStage",
    "MergeStage",
    "RedistStage",
    "RegisterStage",
    "Registration",
    "RibProcess",
    "RibRoute",
    "preferred",
]
