"""RIB-side flow control for the route stream toward the FEA.

The FEA's dataplane backend can be slower than the control plane; its
driver reports pressure (``queued``/``congested``) on every FIB XRL
reply.  This controller sits between the RIB's distributor stages and
the transmit queue and turns that signal into *pacing*:

* routes enter a FIFO of ``(family, op, route)`` events; the pump
  drains maximal same-``(family, op)`` runs into vectorized XRLs (one
  route stays a singular XRL), segmented by the RIB's batch limit —
  exactly the wire shapes the unpaced path produced;
* an **in-flight window** bounds the operations sent but not yet
  replied to, so even before the first congestion signal the FEA's
  pending queue cannot be swamped;
* a ``congested: true`` reply **pauses** the pump; while paused the
  controller polls ``get_queue_status`` until the FEA's watermark latch
  releases, then resumes;
* if the backlog exceeds its **high watermark**, the controller sheds
  superseded events, oldest first: an event is dropped when a newer
  event for the same prefix sits behind it in the queue (FIB ops are
  last-writer-wins per prefix, so only each prefix's newest queued op
  determines the final table).

The queue length is therefore bounded by the number of *distinct*
prefixes in flight, not by the churn rate — the property the resilience
benchmark asserts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Tuple

#: one queued distribution event: (family bits, "add"/"delete", route, hint)
_Event = Tuple[int, str, Any, bool]

#: send_segment(family, op, routes, batching, on_reply) — build and
#: transmit one singular or vectorized FIB XRL for a same-op run.
SendSegment = Callable[[int, str, List[Any], bool, Callable], None]

#: poll_status(on_reply) — transmit one ``get_queue_status`` XRL.
PollStatus = Callable[[Callable], None]


class FeaFlowController:
    """Watermarked, congestion-paced pump for the RIB→FEA route stream."""

    def __init__(self, loop, *, send_segment: SendSegment,
                 poll_status: PollStatus,
                 batch_limit: Callable[[], int],
                 window: int = 512,
                 high_watermark: int = 1024, low_watermark: int = 256,
                 poll_interval: float = 0.05):
        if low_watermark > high_watermark:
            raise ValueError("low_watermark must be <= high_watermark")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.loop = loop
        self.window = window
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.poll_interval = poll_interval
        self._send_segment = send_segment
        self._poll_status = poll_status
        self._batch_limit = batch_limit
        self._queue: Deque[_Event] = deque()
        self._inflight = 0
        self._paused = False
        self._poll_scheduled = False
        self._pumping = False
        self.shed_total = 0
        self.polls_sent = 0
        self.peak_depth = 0

    # -- observability -------------------------------------------------------
    def register_metrics(self, metrics) -> None:
        metrics.gauge("flow.queue", lambda: len(self._queue))
        metrics.gauge("flow.inflight", lambda: self._inflight)
        metrics.gauge("flow.paused", lambda: self._paused)
        metrics.gauge("flow.shed", lambda: self.shed_total)

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def idle(self) -> bool:
        return not self._queue and self._inflight == 0

    # -- intake ---------------------------------------------------------------
    def submit(self, family: int, op: str, route: Any,
               batching: bool = False) -> None:
        self._queue.append((family, op, route, batching))
        self._after_intake()

    def submit_batch(self, family: int, op: str, routes: List[Any]) -> None:
        append = self._queue.append
        for route in routes:
            append((family, op, route, True))
        self._after_intake()

    def _after_intake(self) -> None:
        if len(self._queue) > self.high_watermark:
            self._shed()
        if len(self._queue) > self.peak_depth:
            self.peak_depth = len(self._queue)
        self.pump()

    def _shed(self) -> None:
        """Drop events superseded by a newer same-prefix event behind them.

        Keeps exactly the newest queued event per (family, prefix), in
        order — the final FIB state is unchanged because FIB operations
        are idempotent and last-writer-wins per prefix.
        """
        newest = {}
        for index, event in enumerate(self._queue):
            newest[(event[0], str(event[2].net))] = index
        kept = [event for index, event in enumerate(self._queue)
                if newest[(event[0], str(event[2].net))] == index]
        self.shed_total += len(self._queue) - len(kept)
        self._queue = deque(kept)

    def reset(self) -> None:
        """Drop the backlog and unpause (a reborn FEA starts empty; the
        full-table resync that follows supersedes everything queued)."""
        self._queue.clear()
        self._paused = False

    # -- the pump ---------------------------------------------------------------
    def pump(self) -> None:
        if self._pumping:
            return  # a reply handler re-entered while we were draining
        self._pumping = True
        queue = self._queue
        popleft = queue.popleft
        try:
            while (queue and not self._paused
                    and self._inflight < self.window):
                # A segment never exceeds the *remaining* window: one
                # oversized vectorized XRL would otherwise land more
                # un-acked ops on the FEA than the window promises.
                limit = max(1, min(int(self._batch_limit()),
                                   self.window - self._inflight))
                family, op = queue[0][0], queue[0][1]
                routes: List[Any] = []
                hint = queue[0][3]
                while (queue and len(routes) < limit
                        and queue[0][0] == family
                        and queue[0][1] == op):
                    routes.append(popleft()[2])
                self._inflight += len(routes)
                count = len(routes)
                self._send_segment(
                    family, op, routes, hint,
                    lambda error, args, count=count:
                        self._on_reply(count, error, args))
        finally:
            self._pumping = False

    # -- the pressure signal -------------------------------------------------
    def _on_reply(self, count: int, error, args) -> None:
        self._inflight -= count
        self._handle_status(error, args)
        self.pump()

    def _handle_status(self, error, args) -> None:
        congested = self._read_congested(error, args)
        if congested is None:
            return
        if congested and not self._paused:
            self._paused = True
            self._schedule_poll()
        elif not congested and self._paused:
            self._paused = False

    @staticmethod
    def _read_congested(error, args):
        if error is not None and not error.is_okay:
            return None
        if args is None:
            return None
        try:
            return args.get_bool("congested")
        except (KeyError, ValueError):
            return None

    def _schedule_poll(self) -> None:
        if self._poll_scheduled:
            return
        self._poll_scheduled = True
        self.loop.call_later(self.poll_interval, self._poll,
                             name="fea-flow-poll")

    def _poll(self) -> None:
        self._poll_scheduled = False
        if not self._paused:
            return
        self.polls_sent += 1
        self._poll_status(self._on_poll_reply)

    def _on_poll_reply(self, error, args) -> None:
        self._handle_status(error, args)
        if self._paused:
            self._schedule_poll()
        else:
            self.pump()
