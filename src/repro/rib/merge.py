"""Pairwise merge stages (paper §5.2, Figure 7).

    "the decision process in the RIB is distributed as pairwise decisions
    between Merge Stages, which combine route tables with conflicts based
    on a preference order ... This single metric allows more distributed
    decision-making, which we prefer, since it better supports future
    extensions."

A merge stage is *stateless*: on every message it consults the other
branch via ``lookup_route`` and decides what, if anything, changes
downstream — the same technique BGP's decision process uses.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.stages import RouteTableStage
from repro.net import IPNet
from repro.rib.route import preferred


class MergeStage(RouteTableStage):
    """Combines two upstream branches by administrative preference."""

    def __init__(self, name: str):
        super().__init__(name)
        self.parent_a: Optional[RouteTableStage] = None
        self.parent_b: Optional[RouteTableStage] = None

    def set_parents(self, parent_a: RouteTableStage,
                    parent_b: RouteTableStage) -> None:
        self.parent_a = parent_a
        self.parent_b = parent_b
        parent_a.next_table = self
        parent_b.next_table = self

    def _other_branch(self, caller: RouteTableStage) -> RouteTableStage:
        if caller is self.parent_a:
            return self.parent_b
        if caller is self.parent_b:
            return self.parent_a
        raise AssertionError(
            f"{self.name}: message from unknown branch {caller!r}"
        )

    # -- message handling ----------------------------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        if self.next_table is None:
            return
        other = self._other_branch(caller).lookup_route(route.net, caller=self)
        if other is None:
            self.next_table.add_route(route, caller=self)
        elif preferred(route, other) is route:
            # The new route displaces the other branch's incumbent.
            self.next_table.replace_route(other, route, caller=self)
        # else: the other branch still wins; swallow silently.

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        # Segment-flush: consecutive plain adds coalesce into one
        # downstream batch; a route that displaces the other branch's
        # incumbent flushes the segment and emits its replace singly, so
        # per-prefix ordering matches the singular decomposition.
        next_table = self.next_table
        if next_table is None:
            return
        other_branch = self._other_branch(caller)
        lookup = other_branch.lookup_route
        plain: List[Any] = []
        for route in routes:
            other = lookup(route.net, caller=self)
            if other is None:
                plain.append(route)
            elif preferred(route, other) is route:
                if plain:
                    next_table.add_routes(plain, caller=self)
                    plain = []
                next_table.replace_route(other, route, caller=self)
        if plain:
            next_table.add_routes(plain, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        if self.next_table is None:
            return
        other = self._other_branch(caller).lookup_route(route.net, caller=self)
        if other is None:
            self.next_table.delete_route(route, caller=self)
        elif preferred(route, other) is route:
            # The departing route was the winner; the other branch takes over.
            self.next_table.replace_route(route, other, caller=self)
        # else: the deleted route was never visible downstream.

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        next_table = self.next_table
        if next_table is None:
            return
        other_branch = self._other_branch(caller)
        lookup = other_branch.lookup_route
        plain: List[Any] = []
        for route in routes:
            other = lookup(route.net, caller=self)
            if other is None:
                plain.append(route)
            elif preferred(route, other) is route:
                if plain:
                    next_table.delete_routes(plain, caller=self)
                    plain = []
                next_table.replace_route(route, other, caller=self)
        if plain:
            next_table.delete_routes(plain, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        if self.next_table is None:
            return
        other = self._other_branch(caller).lookup_route(new_route.net,
                                                        caller=self)
        if other is None:
            self.next_table.replace_route(old_route, new_route, caller=self)
            return
        old_won = preferred(old_route, other) is old_route
        new_wins = preferred(new_route, other) is new_route
        if old_won and new_wins:
            self.next_table.replace_route(old_route, new_route, caller=self)
        elif old_won and not new_wins:
            self.next_table.replace_route(old_route, other, caller=self)
        elif not old_won and new_wins:
            self.next_table.replace_route(other, new_route, caller=self)
        # else: the other branch won before and still wins; nothing changes.

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        """Downstream asks: answer with the preferred branch's route."""
        route_a = (self.parent_a.lookup_route(net, caller=self)
                   if self.parent_a else None)
        route_b = (self.parent_b.lookup_route(net, caller=self)
                   if self.parent_b else None)
        return preferred(route_a, route_b)
