"""RIB route objects and the administrative-distance preference order."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net import IPNet

#: Default administrative distances (XORP's defaults, matching common
#: router practice): the RIB "makes its decision purely on the basis of a
#: single administrative distance metric" (paper §5.2).
ADMIN_DISTANCES = {
    "connected": 0,
    "static": 1,
    "ebgp": 20,
    "ospf": 110,
    "is-is": 115,
    "rip": 120,
    "ibgp": 200,
    "fib2mrib": 254,
    "unknown": 255,
}

#: Protocols whose routes are *external* for ExtInt composition purposes.
EXTERNAL_PROTOCOLS = {"ebgp", "ibgp", "bgp"}


class RibRoute:
    """One route as the RIB sees it.

    Routes carry a *policy tag list* — the one change to pre-existing code
    the paper's policy framework needed ("The only change required to
    pre-existing code was the addition of a tag list to routes passed from
    BGP to the RIB and vice versa", §8.3).
    """

    __slots__ = ("net", "nexthop", "metric", "admin_distance", "protocol",
                 "is_external", "ifname", "policytags")

    def __init__(self, net: IPNet, nexthop, metric: int, protocol: str, *,
                 admin_distance: Optional[int] = None,
                 is_external: Optional[bool] = None,
                 ifname: str = "",
                 policytags: Optional[List[int]] = None):
        self.net = net
        self.nexthop = nexthop
        self.metric = metric
        self.protocol = protocol
        self.admin_distance = (
            admin_distance if admin_distance is not None
            else ADMIN_DISTANCES.get(protocol, ADMIN_DISTANCES["unknown"])
        )
        self.is_external = (
            is_external if is_external is not None
            else protocol in EXTERNAL_PROTOCOLS
        )
        self.ifname = ifname
        self.policytags = list(policytags) if policytags else []

    def replaced(self, *, metric: Optional[int] = None,
                 policytags: Optional[List[int]] = None) -> "RibRoute":
        """A copy with the policy-writable fields overridden.

        This is the hook the policy VM rewrites routes through
        (:mod:`repro.policy.varrw`), so policy code never needs to know
        the route class — the route rebuilds itself.
        """
        return RibRoute(
            self.net, self.nexthop,
            self.metric if metric is None else int(metric),
            self.protocol,
            admin_distance=self.admin_distance,
            is_external=self.is_external,
            ifname=self.ifname,
            policytags=self.policytags if policytags is None
            else list(policytags),
        )

    def sort_key(self) -> Tuple[int, int, str]:
        """Lower sorts first = preferred."""
        return (self.admin_distance, self.metric, self.protocol)

    def __repr__(self) -> str:
        return (
            f"RibRoute({self.net} via {self.nexthop} metric={self.metric} "
            f"{self.protocol}/{self.admin_distance})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RibRoute)
            and self.net == other.net
            and self.nexthop == other.nexthop
            and self.metric == other.metric
            and self.protocol == other.protocol
            and self.admin_distance == other.admin_distance
        )


def preferred(a: Optional[RibRoute], b: Optional[RibRoute]) -> Optional[RibRoute]:
    """The winner between two candidate routes for the same prefix.

    Lower administrative distance wins; metric then protocol name break
    ties deterministically.  Either argument may be None.
    """
    if a is None:
        return b
    if b is None:
        return a
    return a if a.sort_key() <= b.sort_key() else b
