"""Shortest-path-first computation over the link-state database."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.net import IPNet, IPv4
from repro.ospf.packets import RouterLSA


def build_adjacency(lsdb: Dict[int, RouterLSA]):
    """Bidirectional adjacency: edge A->B only if B also reports A.

    Returns ``{router_id_int: [(neighbor_id_int, metric, neighbor_addr)]}``
    where *neighbor_addr* is B's interface address on the shared link —
    the nexthop a first-hop route needs.
    """
    adjacency: Dict[int, List[Tuple[int, int, IPv4]]] = {}
    for rid, lsa in lsdb.items():
        for neighbor_id, __, metric in lsa.ptp_neighbors():
            nid = neighbor_id.to_int()
            other = lsdb.get(nid)
            if other is None:
                continue
            # Find the reverse link; its link_data is B's address.
            for back_id, back_addr, __ in other.ptp_neighbors():
                if back_id.to_int() == rid:
                    adjacency.setdefault(rid, []).append(
                        (nid, metric, back_addr))
                    break
    return adjacency


def shortest_path_routes(root_id: IPv4, lsdb: Dict[int, RouterLSA]
                         ) -> Dict[IPNet, Tuple[int, IPv4, IPv4]]:
    """Dijkstra from *root_id* over *lsdb*.

    Returns ``{prefix: (total_metric, nexthop_addr, first_hop_router_id)}``
    for every stub prefix reachable through other routers.  The root's own
    stub prefixes are excluded (they are connected routes).
    """
    root = root_id.to_int()
    if root not in lsdb:
        return {}
    adjacency = build_adjacency(lsdb)
    distance: Dict[int, int] = {root: 0}
    #: first hop towards each node: (nexthop_addr, first_hop_router_id)
    first_hop: Dict[int, Tuple[IPv4, IPv4]] = {}
    visited = set()
    heap: List[Tuple[int, int]] = [(0, root)]
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, metric, neighbor_addr in adjacency.get(node, ()):  # noqa: B905
            candidate = dist + metric
            if candidate < distance.get(neighbor, 1 << 30):
                distance[neighbor] = candidate
                if node == root:
                    first_hop[neighbor] = (neighbor_addr, IPv4(neighbor))
                else:
                    first_hop[neighbor] = first_hop[node]
                heapq.heappush(heap, (candidate, neighbor))
    routes: Dict[IPNet, Tuple[int, IPv4, IPv4]] = {}
    for node in visited:
        if node == root:
            continue
        lsa = lsdb.get(node)
        if lsa is None or node not in first_hop:
            continue
        nexthop, via = first_hop[node]
        for prefix, stub_metric in lsa.stub_prefixes():
            total = distance[node] + stub_metric
            current = routes.get(prefix)
            if current is None or total < current[0]:
                routes[prefix] = (total, nexthop, via)
    return routes
