"""OSPF-lite: a single-area link-state protocol.

The paper's status line — "XORP 1.0 supports BGP and RIP; support for
OSPF and IS-IS is under development" — makes OSPF the natural extension
exercise for this reproduction.  This implementation is a deliberately
reduced but real link-state protocol:

* point-to-point interfaces, single area (0.0.0.0);
* HELLO packets with bidirectionality check (Down → Init → Full);
* Router-LSAs with sequence numbers, flooded to all neighbours and
  refreshed periodically (acknowledgements are omitted — the DESIGN.md
  substitution table covers this: simulated links are reliable, and
  refresh bounds staleness exactly as OSPF's age mechanism does);
* Dijkstra SPF over the link-state database, scheduled event-driven
  (debounced, never a periodic scanner);
* routes fed to the RIB as protocol ``ospf`` (admin distance 110);
* packets relayed through the FEA like RIP's (paper §7).

Like every protocol here, it uses only public XRL interfaces.
"""

from repro.ospf.packets import HelloPacket, LsUpdatePacket, OspfDecodeError, RouterLSA
from repro.ospf.process import OspfProcess
from repro.ospf.spf import shortest_path_routes

__all__ = [
    "HelloPacket",
    "LsUpdatePacket",
    "OspfDecodeError",
    "OspfProcess",
    "RouterLSA",
    "shortest_path_routes",
]
