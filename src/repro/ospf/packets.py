"""OSPF-lite wire format.

A reduced OSPFv2 layout: the common 24-byte header (version, type,
length, router id, area id, checksum, zeroed auth), HELLO bodies, and LS
UPDATE bodies carrying Router-LSAs.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.net import IPNet, IPv4

OSPF_VERSION = 2
OSPF_TYPE_HELLO = 1
OSPF_TYPE_LS_UPDATE = 4

#: Router-LSA link types (RFC 2328 §A.4.2)
LINK_PTP = 1
LINK_STUB = 3

ALL_SPF_ROUTERS = IPv4("224.0.0.5")
LS_MAX_AGE = 3600.0


class OspfDecodeError(ValueError):
    """Malformed OSPF packet."""


def _checksum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _header(packet_type: int, router_id: IPv4, body: bytes) -> bytes:
    length = 24 + len(body)
    head = struct.pack("!BBH", OSPF_VERSION, packet_type, length)
    head += router_id.to_bytes()
    head += b"\x00" * 4            # area 0.0.0.0
    head += b"\x00\x00"            # checksum placeholder
    head += b"\x00" * 10           # autype + authentication (null)
    checksum = _checksum(head + body)
    return head[:12] + struct.pack("!H", checksum) + head[14:] + body


def decode_header(data: bytes) -> Tuple[int, IPv4, bytes]:
    """Validate the common header; return (type, router_id, body)."""
    if len(data) < 24:
        raise OspfDecodeError(f"short OSPF packet ({len(data)} bytes)")
    version, packet_type, length = struct.unpack_from("!BBH", data, 0)
    if version != OSPF_VERSION:
        raise OspfDecodeError(f"bad OSPF version {version}")
    if length != len(data):
        raise OspfDecodeError(f"length {length} != {len(data)}")
    router_id = IPv4(data[4:8])
    (checksum,) = struct.unpack_from("!H", data, 12)
    verify = _checksum(data[:12] + b"\x00\x00" + data[14:])
    if checksum != verify:
        raise OspfDecodeError("bad OSPF checksum")
    return packet_type, router_id, data[24:]


class HelloPacket:
    """HELLO: intervals plus the router ids heard on this link."""

    __slots__ = ("router_id", "hello_interval", "dead_interval", "neighbors")

    def __init__(self, router_id: IPv4, hello_interval: int,
                 dead_interval: int, neighbors: List[IPv4]):
        self.router_id = router_id
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.neighbors = list(neighbors)

    def encode(self) -> bytes:
        body = struct.pack("!IHBBI", 0xFFFFFFFF, self.hello_interval, 0, 0,
                           self.dead_interval)
        body += b"\x00" * 8  # DR/BDR, unused on point-to-point
        body += b"".join(n.to_bytes() for n in self.neighbors)
        return _header(OSPF_TYPE_HELLO, self.router_id, body)

    @classmethod
    def decode_body(cls, router_id: IPv4, body: bytes) -> "HelloPacket":
        if len(body) < 20 or (len(body) - 20) % 4:
            raise OspfDecodeError("bad HELLO length")
        __, hello_interval, __, __, dead_interval = struct.unpack_from(
            "!IHBBI", body, 0)
        neighbors = [IPv4(body[offset : offset + 4])
                     for offset in range(20, len(body), 4)]
        return cls(router_id, hello_interval, dead_interval, neighbors)

    def __repr__(self) -> str:
        return (f"Hello(from={self.router_id} "
                f"neighbors={[str(n) for n in self.neighbors]})")


class RouterLSA:
    """A Router-LSA: who I am, my sequence number, and my links.

    Links are ``(type, link_id, link_data, metric)``:

    * PTP: link_id = neighbour router id, link_data = my address on the
      link;
    * STUB: link_id = network address, link_data = prefix length, giving
      the attached prefix.
    """

    __slots__ = ("router_id", "seq", "links")

    def __init__(self, router_id: IPv4, seq: int,
                 links: List[Tuple[int, IPv4, int, int]]):
        self.router_id = router_id
        self.seq = seq
        self.links = list(links)

    def add_ptp(self, neighbor_id: IPv4, local_addr: IPv4, metric: int) -> None:
        self.links.append((LINK_PTP, neighbor_id, local_addr.to_int(), metric))

    def add_stub(self, subnet: IPNet, metric: int) -> None:
        self.links.append((LINK_STUB, subnet.network, subnet.prefix_len,
                           metric))

    def ptp_neighbors(self) -> List[Tuple[IPv4, IPv4, int]]:
        """[(neighbor_id, my_addr_on_link, metric)]"""
        return [(link_id, IPv4(link_data), metric)
                for kind, link_id, link_data, metric in self.links
                if kind == LINK_PTP]

    def stub_prefixes(self) -> List[Tuple[IPNet, int]]:
        return [(IPNet(link_id, link_data), metric)
                for kind, link_id, link_data, metric in self.links
                if kind == LINK_STUB]

    def encode(self) -> bytes:
        parts = [self.router_id.to_bytes(),
                 struct.pack("!iH", self.seq, len(self.links))]
        for kind, link_id, link_data, metric in self.links:
            parts.append(struct.pack("!B", kind))
            parts.append(link_id.to_bytes())
            parts.append(struct.pack("!IH", link_data, metric))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["RouterLSA", int]:
        try:
            router_id = IPv4(data[offset : offset + 4])
            seq, count = struct.unpack_from("!iH", data, offset + 4)
            offset += 10
            links = []
            for __ in range(count):
                kind = data[offset]
                link_id = IPv4(data[offset + 1 : offset + 5])
                link_data, metric = struct.unpack_from("!IH", data, offset + 5)
                offset += 11
                if kind not in (LINK_PTP, LINK_STUB):
                    raise OspfDecodeError(f"bad link type {kind}")
                links.append((kind, link_id, link_data, metric))
        except (struct.error, IndexError) as exc:
            raise OspfDecodeError(f"truncated Router-LSA: {exc}") from exc
        return cls(router_id, seq, links), offset

    def __repr__(self) -> str:
        return f"RouterLSA({self.router_id} seq={self.seq} links={len(self.links)})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RouterLSA)
                and self.router_id == other.router_id
                and self.seq == other.seq and self.links == other.links)


class LsUpdatePacket:
    """LS UPDATE carrying one or more Router-LSAs."""

    __slots__ = ("router_id", "lsas")

    def __init__(self, router_id: IPv4, lsas: List[RouterLSA]):
        self.router_id = router_id
        self.lsas = list(lsas)

    def encode(self) -> bytes:
        body = struct.pack("!H", len(self.lsas))
        body += b"".join(lsa.encode() for lsa in self.lsas)
        return _header(OSPF_TYPE_LS_UPDATE, self.router_id, body)

    @classmethod
    def decode_body(cls, router_id: IPv4, body: bytes) -> "LsUpdatePacket":
        if len(body) < 2:
            raise OspfDecodeError("short LS UPDATE")
        (count,) = struct.unpack_from("!H", body, 0)
        offset = 2
        lsas = []
        for __ in range(count):
            lsa, offset = RouterLSA.decode(body, offset)
            lsas.append(lsa)
        return cls(router_id, lsas)

    def __repr__(self) -> str:
        return f"LsUpdate(from={self.router_id} lsas={len(self.lsas)})"


def decode_packet(data: bytes):
    """Decode any OSPF-lite packet."""
    packet_type, router_id, body = decode_header(data)
    if packet_type == OSPF_TYPE_HELLO:
        return HelloPacket.decode_body(router_id, body)
    if packet_type == OSPF_TYPE_LS_UPDATE:
        return LsUpdatePacket.decode_body(router_id, body)
    raise OspfDecodeError(f"unsupported OSPF packet type {packet_type}")
