"""The OSPF-lite process: adjacencies, flooding, SPF, RIB feed."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.process import Host, XorpProcess
from repro.interfaces import COMMON_IDL, FEA_RAWPKT_CLIENT4_IDL, OSPF_IDL
from repro.net import IPNet, IPv4
from repro.ospf.packets import (
    ALL_SPF_ROUTERS,
    HelloPacket,
    LsUpdatePacket,
    OspfDecodeError,
    RouterLSA,
    decode_packet,
)
from repro.ospf.spf import shortest_path_routes
from repro.xrl import XrlArgs, XrlError
from repro.xrl.error import XrlErrorCode
from repro.xrl.xrl import Xrl

#: stand-in UDP port for IP protocol 89 over the FEA relay (see DESIGN.md)
OSPF_PORT = 89

NEIGHBOR_DOWN = "Down"
NEIGHBOR_INIT = "Init"
NEIGHBOR_FULL = "Full"


class OspfInterface:
    __slots__ = ("ifname", "addr", "prefix_len", "cost", "hello_timer",
                 "neighbors")

    def __init__(self, ifname: str, addr: IPv4, prefix_len: int, cost: int):
        self.ifname = ifname
        self.addr = addr
        self.prefix_len = prefix_len
        self.cost = cost
        self.hello_timer = None
        #: router_id int -> Neighbor
        self.neighbors: Dict[int, "Neighbor"] = {}

    @property
    def subnet(self) -> IPNet:
        return IPNet(self.addr, self.prefix_len)


class Neighbor:
    __slots__ = ("router_id", "state", "dead_timer", "addr")

    def __init__(self, router_id: IPv4):
        self.router_id = router_id
        self.state = NEIGHBOR_INIT
        self.dead_timer = None
        self.addr: Optional[IPv4] = None


class OspfProcess(XorpProcess):
    """OSPF-lite as a XORP process."""

    process_name = "ospf"

    def __init__(self, host: Host, router_id: IPv4, *,
                 fea_target: str = "fea", rib_target: Optional[str] = "rib",
                 hello_interval: float = 10.0,
                 dead_interval: float = 40.0,
                 refresh_interval: float = 1800.0):
        super().__init__(host)
        self.router_id = router_id
        self.fea_target = fea_target
        self.rib_target = rib_target
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.xrl = self.create_router("ospf", singleton=True)
        self.interfaces: Dict[str, OspfInterface] = {}
        #: router_id int -> RouterLSA
        self.lsdb: Dict[int, RouterLSA] = {}
        self._my_seq = 0
        self._spf_scheduled = False
        self.spf_runs = 0
        #: routes currently installed in the RIB: prefix -> (metric, nexthop)
        self._installed: Dict[IPNet, Tuple[int, IPv4]] = {}
        self.metrics.gauge("routes", lambda: len(self._installed))
        self.metrics.gauge("lsdb.entries", lambda: len(self.lsdb))
        self.metrics.gauge("spf.runs", lambda: self.spf_runs)
        self.xrl.bind(OSPF_IDL, self)
        self.xrl.bind(FEA_RAWPKT_CLIENT4_IDL, self)
        self.xrl.bind(COMMON_IDL, self)
        if rib_target is not None:
            self.xrl.send(Xrl(rib_target, "rib", "1.0", "add_igp_table4",
                              XrlArgs().add_txt("protocol", "ospf")))
        self.loop.call_periodic(refresh_interval, self._refresh_lsa,
                                name="ospf-refresh")

    # -- ospf/0.1 -------------------------------------------------------------
    def xrl_add_ospf_interface(self, ifname, addr, prefix_len, cost) -> None:
        if ifname in self.interfaces:
            raise XrlError(
                XrlErrorCode.COMMAND_FAILED, f"OSPF already on {ifname!r}"
            )
        interface = OspfInterface(ifname, addr, int(prefix_len),
                                  max(1, int(cost)))
        self.interfaces[ifname] = interface
        args = (XrlArgs().add_txt("creator", self.xrl.class_name)
                .add_txt("ifname", ifname).add_u32("port", OSPF_PORT))
        self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                          "open_udp", args))
        self._send_hello(interface)
        interface.hello_timer = self.loop.call_periodic(
            self.hello_interval, lambda: self._send_hello(interface),
            name=f"ospf-hello-{ifname}")
        self._originate_lsa()

    def xrl_get_neighbors(self) -> dict:
        lines = []
        for interface in self.interfaces.values():
            for neighbor in interface.neighbors.values():
                lines.append(f"{neighbor.router_id}@{interface.ifname}:"
                             f"{neighbor.state}")
        return {"neighbors": ",".join(sorted(lines))}

    def xrl_get_lsdb(self) -> dict:
        lines = [f"{IPv4(rid)}:seq={lsa.seq}:links={len(lsa.links)}"
                 for rid, lsa in sorted(self.lsdb.items())]
        return {"lsdb": ",".join(lines)}

    def xrl_get_router_id(self) -> dict:
        return {"id": self.router_id}

    # -- hello protocol -----------------------------------------------------
    def _send_hello(self, interface: OspfInterface) -> None:
        heard = [IPv4(rid) for rid in interface.neighbors]
        hello = HelloPacket(self.router_id, int(self.hello_interval),
                            int(self.dead_interval), heard)
        self._send_packet(interface, hello.encode())

    def _on_hello(self, interface: OspfInterface, src: IPv4,
                  hello: HelloPacket) -> None:
        rid = hello.router_id.to_int()
        if rid == self.router_id.to_int():
            return
        neighbor = interface.neighbors.get(rid)
        if neighbor is None:
            neighbor = Neighbor(hello.router_id)
            interface.neighbors[rid] = neighbor
            # Answer immediately so the two-way check converges fast.
            self._send_hello(interface)
        neighbor.addr = src
        if neighbor.dead_timer is None:
            neighbor.dead_timer = self.loop.call_later(
                self.dead_interval,
                lambda: self._neighbor_dead(interface, rid),
                name="ospf-dead")
        else:
            neighbor.dead_timer.reschedule_after(self.dead_interval)
        two_way = any(n == self.router_id for n in hello.neighbors)
        if two_way and neighbor.state != NEIGHBOR_FULL:
            neighbor.state = NEIGHBOR_FULL
            self._originate_lsa()
            self._flood_lsdb_to(interface)
        elif not two_way and neighbor.state == NEIGHBOR_FULL:
            neighbor.state = NEIGHBOR_INIT
            self._originate_lsa()

    def _neighbor_dead(self, interface: OspfInterface, rid: int) -> None:
        neighbor = interface.neighbors.pop(rid, None)
        if neighbor is None:
            return
        # The failed router's LSA will age out; our own changes now.
        self._originate_lsa()
        self.lsdb.pop(rid, None)
        self._schedule_spf()

    # -- LSA origination and flooding ------------------------------------------
    def _originate_lsa(self) -> None:
        self._my_seq += 1
        lsa = RouterLSA(self.router_id, self._my_seq, [])
        for interface in self.interfaces.values():
            lsa.add_stub(interface.subnet, interface.cost)
            for neighbor in interface.neighbors.values():
                if neighbor.state == NEIGHBOR_FULL:
                    lsa.add_ptp(neighbor.router_id, interface.addr,
                                interface.cost)
        self.lsdb[self.router_id.to_int()] = lsa
        self._flood(lsa, exclude_ifname=None)
        self._schedule_spf()

    def _refresh_lsa(self) -> None:
        if self.interfaces:
            self._originate_lsa()

    def _flood(self, lsa: RouterLSA, exclude_ifname: Optional[str]) -> None:
        packet = LsUpdatePacket(self.router_id, [lsa]).encode()
        for interface in self.interfaces.values():
            if interface.ifname == exclude_ifname:
                continue
            if any(n.state == NEIGHBOR_FULL
                   for n in interface.neighbors.values()):
                self._send_packet(interface, packet)

    def _flood_lsdb_to(self, interface: OspfInterface) -> None:
        """A new adjacency formed: synchronise the whole database."""
        if not self.lsdb:
            return
        packet = LsUpdatePacket(self.router_id,
                                list(self.lsdb.values())).encode()
        self._send_packet(interface, packet)

    def _on_ls_update(self, interface: OspfInterface,
                      update: LsUpdatePacket) -> None:
        changed = False
        for lsa in update.lsas:
            rid = lsa.router_id.to_int()
            if rid == self.router_id.to_int():
                continue  # we are authoritative for our own LSA
            current = self.lsdb.get(rid)
            if current is not None and current.seq >= lsa.seq:
                continue
            self.lsdb[rid] = lsa
            self._flood(lsa, exclude_ifname=interface.ifname)
            changed = True
        if changed:
            self._schedule_spf()

    # -- packet I/O through the FEA relay -----------------------------------
    def _send_packet(self, interface: OspfInterface, payload: bytes) -> None:
        args = (XrlArgs().add_txt("ifname", interface.ifname)
                .add_ipv4("dst", ALL_SPF_ROUTERS).add_u32("port", OSPF_PORT)
                .add_binary("payload", payload))
        self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                          "send_udp", args))

    def xrl_recv_udp(self, ifname, src, port, payload) -> None:
        interface = self.interfaces.get(ifname)
        if interface is None or src == interface.addr:
            return
        try:
            packet = decode_packet(payload)
        except OspfDecodeError:
            return
        if isinstance(packet, HelloPacket):
            self._on_hello(interface, src, packet)
        elif isinstance(packet, LsUpdatePacket):
            self._on_ls_update(interface, packet)

    # -- SPF and the RIB ----------------------------------------------------
    def _schedule_spf(self) -> None:
        """Event-driven, debounced SPF — never a periodic scanner."""
        if self._spf_scheduled:
            return
        self._spf_scheduled = True
        self.loop.call_soon(self._run_spf)

    def _run_spf(self) -> None:
        self._spf_scheduled = False
        self.spf_runs += 1
        routes = shortest_path_routes(self.router_id, self.lsdb)
        # Our own connected subnets never go to the RIB from OSPF.
        own_subnets = {i.subnet for i in self.interfaces.values()}
        desired: Dict[IPNet, Tuple[int, IPv4]] = {
            prefix: (metric, nexthop)
            for prefix, (metric, nexthop, __) in routes.items()
            if prefix not in own_subnets
        }
        if self.rib_target is None:
            self._installed = desired
            return
        for prefix in list(self._installed):
            if prefix not in desired:
                args = (XrlArgs().add_txt("protocol", "ospf")
                        .add_ipv4net("net", prefix))
                self.xrl.send(Xrl(self.rib_target, "rib", "1.0",
                                  "delete_route4", args), batch=True)
                del self._installed[prefix]
        for prefix, (metric, nexthop) in desired.items():
            current = self._installed.get(prefix)
            if current == (metric, nexthop):
                continue
            args = (XrlArgs().add_txt("protocol", "ospf")
                    .add_ipv4net("net", prefix).add_ipv4("nexthop", nexthop)
                    .add_u32("metric", metric).add_list("policytags", []))
            method = "add_route4" if current is None else "replace_route4"
            # A whole SPF install runs in one turn: coalesce on the wire.
            self.xrl.send(Xrl(self.rib_target, "rib", "1.0", method, args),
                          batch=True)
            self._installed[prefix] = (metric, nexthop)

    # -- common/0.1 ------------------------------------------------------------
    def xrl_get_target_name(self) -> dict:
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self) -> dict:
        return {"version": "repro-ospf/0.1"}

    def xrl_get_status(self) -> dict:
        return {"status": "running" if self.running else "shutdown"}

    def xrl_shutdown(self) -> None:
        self.loop.call_soon(self.shutdown)

    def shutdown(self) -> None:
        for interface in self.interfaces.values():
            if interface.hello_timer is not None:
                interface.hello_timer.cancel()
            for neighbor in interface.neighbors.values():
                if neighbor.dead_timer is not None:
                    neighbor.dead_timer.cancel()
        super().shutdown()
