"""The staged routing-table framework (paper §5).

    "Rather than a single, shared, passive table that stores information
    and annotations, we implement routing tables as dynamic processes
    through which routes flow.  There is no single routing table object,
    but rather a network of pluggable routing stages, each implementing
    the same interface."

The stage API is exactly the paper's:

* ``add_route`` — a preceding stage is sending a new route downstream;
* ``delete_route`` — a preceding stage is withdrawing an old route;
* ``lookup_route`` — a *later* stage is asking upstream for the route to a
  destination subnet.

with the two consistency rules:

1. any ``delete_route`` must correspond to a previous ``add_route``;
2. the result of ``lookup_route`` must be consistent with previous
   ``add_route`` / ``delete_route`` messages sent downstream.

Routes are any objects with a ``.net`` attribute (an :class:`IPNet`).

Batched flow: ``add_routes`` / ``delete_routes`` carry a whole burst of
routes in one call.  A batch is *semantically identical* to issuing its
constituent singular calls in order — that is the batch contract, and it
is what keeps the two consistency rules meaningful under batching: a
stage may process a batch with one downstream dispatch, but the
per-prefix event order it emits must match the singular decomposition.
The ``caller`` argument is keyword-only on the whole message API so call
sites read unambiguously and stages can add positional parameters
without breaking callers.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.net import IPNet
from repro.trie import RouteTrie


class ConsistencyError(AssertionError):
    """A stage observed a violation of the consistency rules."""


# -- opt-in instrumentation (the repro.sanitizer hook point) -----------------
#
# The sanitizer must cost nothing when disarmed, so there is no
# ``if instrumented:`` branch anywhere in the message hot path.  Instead a
# hook receives every stage *class* — existing subclasses when installed,
# future ones as they are defined (via ``__init_subclass__``) — and may
# rebind methods on it; uninstalling is the hook owner's job (it restores
# the originals it saved).  ``stream_reset`` is the one cooperative
# notification: code that legitimately wipes per-stage state without
# emitting deletes (e.g. BGP tearing down a peering's output branch on
# session loss) announces it so shadow state tracking the §5 consistency
# rules can be dropped there instead of misreported as violations.

_instrumentation_hooks: List[Callable[[type], None]] = []
_stream_reset_listeners: List[Callable[[tuple], None]] = []


def all_stage_classes() -> List[type]:
    """Every currently defined stage class, the base class included."""
    seen: List[type] = []

    def visit(cls: type) -> None:
        if cls in seen:
            return
        seen.append(cls)
        for sub in cls.__subclasses__():
            visit(sub)

    visit(RouteTableStage)
    return seen


def install_stage_instrumentation(hook: Callable[[type], None]) -> None:
    """Register *hook* and apply it to every stage class, present and future."""
    _instrumentation_hooks.append(hook)
    for cls in all_stage_classes():
        hook(cls)


def uninstall_stage_instrumentation(hook: Callable[[type], None]) -> None:
    _instrumentation_hooks.remove(hook)


def add_stream_reset_listener(listener: Callable[[tuple], None]) -> None:
    _stream_reset_listeners.append(listener)


def remove_stream_reset_listener(listener: Callable[[tuple], None]) -> None:
    _stream_reset_listeners.remove(listener)


def stream_reset(*stages: "RouteTableStage") -> None:
    """Announce that *stages* dropped route state without emitting deletes."""
    for listener in list(_stream_reset_listeners):
        listener(stages)


class RouteTableStage:
    """Base stage: forwards everything, knows its neighbours.

    ``parent`` is the upstream neighbour (towards route origin), and
    ``next_table`` the downstream one (towards consumers).  Stages with
    several parents (decision, merge) track them themselves and use the
    *caller* argument to tell parents apart.
    """

    def __init__(self, name: str):
        self.name = name
        self.parent: Optional["RouteTableStage"] = None
        self.next_table: Optional["RouteTableStage"] = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # Classes defined while a sanitizer is armed get instrumented too
        # (test-local stage subclasses, dynamically created stages).
        for hook in _instrumentation_hooks:
            hook(cls)

    # -- plumbing ------------------------------------------------------------
    def set_next(self, downstream: Optional["RouteTableStage"]) -> None:
        self.next_table = downstream
        if downstream is not None:
            downstream.parent = self

    @staticmethod
    def plumb(*stages: "RouteTableStage") -> None:
        """Connect *stages* into a linear pipeline, left-to-right."""
        for upstream, downstream in zip(stages, stages[1:]):
            upstream.set_next(downstream)

    def insert_downstream(self, new_stage: "RouteTableStage") -> None:
        """Dynamically plumb *new_stage* directly after this stage.

        This is how dynamic stages (deletion stages, policy re-filter
        stages) are spliced in at runtime (paper §5.1.2, Figure 6).
        """
        downstream = self.next_table
        self.set_next(new_stage)
        new_stage.set_next(downstream)

    def unplumb(self) -> None:
        """Remove this stage from a linear pipeline, reconnecting neighbours."""
        upstream, downstream = self.parent, self.next_table
        if upstream is not None and upstream.next_table is self:
            upstream.next_table = downstream
        if downstream is not None and downstream.parent is self:
            downstream.parent = upstream
        self.parent = None
        self.next_table = None

    # -- the stage message API (paper §5.1) -----------------------------------
    def add_route(self, route: Any, *,
                  caller: Optional["RouteTableStage"] = None) -> None:
        """Receive a new route from upstream; default: pass it on."""
        if self.next_table is not None:
            self.next_table.add_route(route, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional["RouteTableStage"] = None) -> None:
        """Receive a withdrawal from upstream; default: pass it on."""
        if self.next_table is not None:
            self.next_table.delete_route(route, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional["RouteTableStage"] = None) -> None:
        """Atomic delete+add for the same prefix; default decomposition."""
        if self.next_table is not None:
            self.next_table.replace_route(old_route, new_route, caller=self)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional["RouteTableStage"] = None) -> Any:
        """A later stage asks for the route to *net*; default: ask upstream.

        "If the stage cannot answer the request itself, it should pass the
        request upstream to the preceding stage."
        """
        if self.parent is not None:
            return self.parent.lookup_route(net, caller=self)
        return None

    # -- the batched message API ----------------------------------------------
    def add_routes(self, routes: List[Any], *,
                   caller: Optional["RouteTableStage"] = None) -> None:
        """Receive a burst of new routes; semantically N ``add_route`` calls.

        The default decomposes into singular calls; hot stages override
        it to amortize per-call overhead (one downstream dispatch per
        batch) while preserving the singular per-prefix event order.
        """
        for route in routes:
            self.add_route(route, caller=caller)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional["RouteTableStage"] = None) -> None:
        """Receive a burst of withdrawals; semantically N ``delete_route``."""
        for route in routes:
            self.delete_route(route, caller=caller)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class OriginStage(RouteTableStage):
    """A stage that *stores* routes and feeds them into the pipeline.

    "we only store the original versions of routes, in the Peer In
    stages" — BGP's PeerIn and the RIB's origin tables derive from this.
    """

    def __init__(self, name: str, bits: int = 32):
        super().__init__(name)
        self.routes = RouteTrie(bits)

    @property
    def route_count(self) -> int:
        return len(self.routes)

    def originate(self, route: Any) -> None:
        """Inject *route*; replaces any previous route for the same prefix."""
        previous = self.routes.insert(route.net, route)
        if self.next_table is None:
            return
        if previous is not None:
            self.next_table.replace_route(previous, route, caller=self)
        else:
            self.next_table.add_route(route, caller=self)

    def originate_batch(self, routes: List[Any]) -> None:
        """Inject a burst of routes with one downstream dispatch per segment.

        Fresh prefixes accumulate into ``add_routes`` batches; a route
        that replaces a stored one flushes the accumulated segment first
        and then emits the singular ``replace_route``, so the downstream
        per-prefix event order is exactly the singular decomposition.
        """
        insert = self.routes.insert
        next_table = self.next_table
        if next_table is None:
            for route in routes:
                insert(route.net, route)
            return
        fresh: List[Any] = []
        for route in routes:
            previous = insert(route.net, route)
            if previous is not None:
                if fresh:
                    next_table.add_routes(fresh, caller=self)
                    fresh = []
                next_table.replace_route(previous, route, caller=self)
            else:
                fresh.append(route)
        if fresh:
            next_table.add_routes(fresh, caller=self)

    def withdraw(self, net: IPNet) -> Any:
        """Withdraw the route for *net*; returns it (KeyError if absent)."""
        route = self.routes.remove(net)
        if self.next_table is not None:
            self.next_table.delete_route(route, caller=self)
        return route

    def withdraw_if_present(self, net: IPNet) -> Any:
        route = self.routes.discard(net)
        if route is not None and self.next_table is not None:
            self.next_table.delete_route(route, caller=self)
        return route

    def withdraw_batch(self, nets: List[IPNet]) -> List[Any]:
        """Withdraw a burst of prefixes (absent ones are skipped).

        Returns the removed routes; downstream sees one
        ``delete_routes`` batch.
        """
        removed: List[Any] = []
        discard = self.routes.discard
        for net in nets:
            route = discard(net)
            if route is not None:
                removed.append(route)
        if removed and self.next_table is not None:
            self.next_table.delete_routes(removed, caller=self)
        return removed

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        return self.routes.exact(net)

    # Origin stages answer dumps: iterate stored routes safely.
    def route_iterator(self):
        return self.routes.iterator()


class FilterStage(RouteTableStage):
    """A filter bank element: drop or rewrite routes flowing downstream.

    *filter_fn(route)* returns None to drop, the same route to pass, or a
    modified route.  The function must be deterministic, so a later
    ``delete_route`` for the original route maps to the same output the
    earlier ``add_route`` produced — preserving consistency rule 1.
    """

    def __init__(self, name: str, filter_fn: Callable[[Any], Optional[Any]]):
        super().__init__(name)
        self.filter_fn = filter_fn

    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        filtered = self.filter_fn(route)
        if filtered is not None and self.next_table is not None:
            self.next_table.add_route(filtered, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        filtered = self.filter_fn(route)
        if filtered is not None and self.next_table is not None:
            self.next_table.delete_route(filtered, caller=self)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        # One pass over the batch, one downstream dispatch: the filter
        # function (possibly a compiled policy program) stays hot across
        # the whole burst instead of being re-entered per call chain.
        filter_fn = self.filter_fn
        passed = [f for f in map(filter_fn, routes) if f is not None]
        if passed and self.next_table is not None:
            self.next_table.add_routes(passed, caller=self)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        filter_fn = self.filter_fn
        passed = [f for f in map(filter_fn, routes) if f is not None]
        if passed and self.next_table is not None:
            self.next_table.delete_routes(passed, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        old_filtered = self.filter_fn(old_route)
        new_filtered = self.filter_fn(new_route)
        if self.next_table is None:
            return
        if old_filtered is not None and new_filtered is not None:
            self.next_table.replace_route(old_filtered, new_filtered,
                                          caller=self)
        elif old_filtered is not None:
            self.next_table.delete_route(old_filtered, caller=self)
        elif new_filtered is not None:
            self.next_table.add_route(new_filtered, caller=self)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        if self.parent is None:
            return None
        route = self.parent.lookup_route(net, caller=self)
        if route is None:
            return None
        return self.filter_fn(route)


class ConsistencyCheckStage(RouteTableStage):
    """The paper's debugging *cache stage* (§5.1).

    "we have developed an extra consistency checking stage for debugging
    purposes. ... [it] has helped us discover many subtle bugs that would
    otherwise have gone undetected."

    It caches every route announced downstream and raises
    :class:`ConsistencyError` when the rules are violated.  It answers
    ``lookup_route`` from the cache.
    """

    def __init__(self, name: str, bits: int = 32, *, strict_lookup: bool = False):
        super().__init__(name)
        self.cache = RouteTrie(bits)
        self.checks_failed = 0
        self.strict_lookup = strict_lookup

    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        if self.cache.exact(route.net) is not None:
            self.checks_failed += 1
            raise ConsistencyError(
                f"{self.name}: add_route for {route.net} but it was already "
                "added and never deleted (rule 1)"
            )
        self.cache.insert(route.net, route)
        super().add_route(route, caller=caller)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        cached = self.cache.exact(route.net)
        if cached is None:
            self.checks_failed += 1
            raise ConsistencyError(
                f"{self.name}: delete_route for {route.net} without a "
                "corresponding add_route (rule 1)"
            )
        self.cache.remove(route.net)
        super().delete_route(route, caller=caller)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        cached = self.cache.exact(old_route.net)
        if cached is None:
            self.checks_failed += 1
            raise ConsistencyError(
                f"{self.name}: replace_route for {old_route.net} but that "
                "prefix was never added (rule 1)"
            )
        self.cache.remove(old_route.net)
        self.cache.insert(new_route.net, new_route)
        super().replace_route(old_route, new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        cached = self.cache.exact(net)
        if cached is not None:
            return cached
        # Rule 2: upstream must agree with what we've seen flow past.  In
        # strict mode (single-branch pipelines) a route upstream that was
        # never announced downstream is a violation; in multi-branch
        # pipelines lookups legitimately see unannounced alternatives.
        upstream = super().lookup_route(net, caller=caller)
        if upstream is not None and self.strict_lookup:
            raise ConsistencyError(
                f"{self.name}: lookup_route({net}) found an upstream route "
                "that was never announced downstream (rule 2)"
            )
        return upstream


class DeletionStage(RouteTableStage):
    """Dynamic background-deletion stage (paper §5.1.2, Figure 6).

    When a peering goes down, its route table is handed to a new deletion
    stage plumbed directly after the origin stage; the origin immediately
    starts fresh and empty, while this stage deletes the old routes in
    background slices — preserving consistency throughout:

    * an ``add_route`` from upstream for a prefix still held here first
      emits the pending ``delete_route`` downstream, then the add;
    * ``lookup_route`` keeps answering with not-yet-deleted routes;
    * when done, the stage unplumbs and discards itself.
    """

    def __init__(self, name: str, loop, routes: RouteTrie, *,
                 slice_size: int = 64,
                 on_complete: Optional[Callable[[], None]] = None):
        super().__init__(name)
        self.loop = loop
        self.pending = routes
        self.slice_size = slice_size
        self._iterator = routes.iterator()
        self._task = None
        self._on_complete = on_complete

    def start(self) -> None:
        """Begin background deletion (call after plumbing in)."""
        from repro.eventloop.tasks import TaskPriority

        self._task = self.loop.spawn_task(
            self._run_slice, priority=TaskPriority.BACKGROUND,
            name=f"{self.name}-deletion",
        )

    def _run_slice(self) -> bool:
        budget = self.slice_size
        iterator = self._iterator
        discard = self.pending.discard
        deleted: List[Any] = []
        exhausted = False
        while budget > 0:
            if iterator.exhausted:
                exhausted = True
                break
            if not iterator.valid:
                iterator.advance()
                continue
            net = iterator.net
            route = iterator.payload
            iterator.advance()
            discard(net)
            deleted.append(route)
            budget -= 1
        # One batched downstream dispatch per slice, not one per route.
        if deleted and self.next_table is not None:
            self.next_table.delete_routes(deleted, caller=self)
        if exhausted or (len(self.pending) == 0 and iterator.exhausted):
            self._finish()
            return False
        return True

    def _finish(self) -> None:
        self._iterator.close()
        if self.parent is not None or self.next_table is not None:
            self.unplumb()
        if self._on_complete is not None:
            on_complete, self._on_complete = self._on_complete, None
            on_complete()

    @property
    def done(self) -> bool:
        return len(self.pending) == 0 and self._iterator.exhausted

    def add_route(self, route: Any, *,
                  caller: Optional[RouteTableStage] = None) -> None:
        held = self.pending.discard(route.net)
        if held is not None and self.next_table is not None:
            # "first it sends a delete route downstream for the old route,
            # and then it sends the add route for the new route."
            self.next_table.delete_route(held, caller=self)
        super().add_route(route, caller=caller)

    def add_routes(self, routes: List[Any], *,
                   caller: Optional[RouteTableStage] = None) -> None:
        # Per prefix the delete-before-add order is preserved; across
        # prefixes all pending deletes are grouped ahead of the adds so
        # the batch costs two downstream dispatches, not 2N.
        discard = self.pending.discard
        if self.next_table is None:
            for route in routes:
                discard(route.net)
            return
        helds = []
        for route in routes:
            held = discard(route.net)
            if held is not None:
                helds.append(held)
        if helds:
            self.next_table.delete_routes(helds, caller=self)
        self.next_table.add_routes(routes, caller=self)

    def delete_route(self, route: Any, *,
                     caller: Optional[RouteTableStage] = None) -> None:
        # Upstream deletes refer to its own (new-generation) routes; a held
        # prefix can't also exist upstream, so simply forward.
        super().delete_route(route, caller=caller)

    def delete_routes(self, routes: List[Any], *,
                      caller: Optional[RouteTableStage] = None) -> None:
        if self.next_table is not None:
            self.next_table.delete_routes(routes, caller=self)

    def replace_route(self, old_route: Any, new_route: Any, *,
                      caller: Optional[RouteTableStage] = None) -> None:
        super().replace_route(old_route, new_route, caller=caller)

    def lookup_route(self, net: IPNet, *,
                     caller: Optional[RouteTableStage] = None) -> Any:
        held = self.pending.exact(net)
        if held is not None:
            return held
        return super().lookup_route(net, caller=caller)
