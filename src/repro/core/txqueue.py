"""Pipelined XRL transmit queue.

    "We should emphasize that the XRL interface is pipelined, so
    performance is still good when many routes change in a short time
    interval."  (paper §8.2)

Processes that stream route changes to another process (BGP → RIB,
RIB → FEA) queue the XRLs here; up to *window* calls are outstanding at a
time.  The queue exposes the two moments the paper's profiling measures:
*queued for transmission* (enqueue) and *sent* (handed to the transport).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.xrl import XrlArgs, XrlError, XrlRouter
from repro.xrl.retry import RetryPolicy
from repro.xrl.xrl import Xrl


class XrlTransmitQueue:
    """Window-limited pipelined sender of XRLs to one or more targets.

    *retry* and *deadline* are handed through to every
    :meth:`XrlRouter.send`.  Route streams (BGP → RIB, RIB → FEA) are
    idempotent, so queues carrying them opt in to retries: a dropped frame
    then costs one backoff instead of wedging the window forever.
    """

    def __init__(self, router: XrlRouter, *, window: int = 100,
                 on_error: Optional[Callable[[Xrl, XrlError], None]] = None,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._router = router
        self._window = window
        self._queue: Deque[Tuple[Xrl, Optional[Callable], Optional[Callable],
                                 bool]] = deque()
        self._inflight = 0
        self._on_error = on_error
        self._retry = retry
        self._deadline = deadline
        self.sent_count = 0

    def __len__(self) -> int:
        return len(self._queue)

    def register_metrics(self, registry, prefix: str = "txq") -> None:
        """Expose depth/inflight/sent as gauges on *registry* under
        ``<prefix>.*`` (lazy reads; nothing on the enqueue hot path)."""
        registry.gauge(f"{prefix}.depth", lambda: len(self._queue))
        registry.gauge(f"{prefix}.inflight", lambda: self._inflight)
        registry.gauge(f"{prefix}.sent", lambda: self.sent_count)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def idle(self) -> bool:
        return not self._queue and self._inflight == 0

    def enqueue(self, xrl: Xrl,
                on_sent: Optional[Callable[[], None]] = None,
                on_reply: Optional[Callable[[XrlError, XrlArgs], None]] = None,
                *, batch: bool = False) -> None:
        """Queue *xrl*; *on_sent* fires when it is handed to the transport.

        *batch* is forwarded to :meth:`XrlRouter.send`: enqueues from one
        burst (a batched stage delivering a route batch downstream) then
        coalesce on the wire within the event-loop turn.
        """
        self._queue.append((xrl, on_sent, on_reply, batch))
        self._pump()

    def enqueue_batch(self, items) -> None:
        """Queue several ``(xrl, on_sent, on_reply)`` tuples with the batch
        hint set, draining the window in one pass."""
        append = self._queue.append
        for xrl, on_sent, on_reply in items:
            append((xrl, on_sent, on_reply, True))
        self._pump()

    def _pump(self) -> None:
        queue = self._queue
        popleft = queue.popleft
        send = self._router.send
        while self._inflight < self._window and queue:
            xrl, on_sent, on_reply, batch = popleft()
            self._inflight += 1
            self.sent_count += 1
            if on_sent is not None:
                on_sent()
            send(xrl, self._completion(xrl, on_reply),
                 retry=self._retry, deadline=self._deadline,
                 batch=batch)

    def _completion(self, xrl: Xrl, on_reply) -> Callable:
        def done(error: XrlError, args: XrlArgs) -> None:
            self._inflight -= 1
            if not error.is_okay and self._on_error is not None:
                self._on_error(xrl, error)
            if on_reply is not None:
                on_reply(error, args)
            self._pump()

        return done
