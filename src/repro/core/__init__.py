"""The paper's primary contribution: the extensible control-plane core.

Two pieces live here:

* :mod:`repro.core.process` — the multi-process composition model: every
  routing protocol and management function is a separate event-driven
  *process* communicating only via XRLs (paper §4);
* :mod:`repro.core.stages` — the staged routing-table framework: routing
  tables as networks of pluggable stages through which routes flow, with
  the paper's message API (``add_route`` / ``delete_route`` /
  ``lookup_route``) and consistency rules (paper §5).

Protocol-specific stages (BGP's decision process, the RIB's merge stages,
…) subclass these in their own packages.
"""

from repro.core.process import Host, XorpProcess
from repro.core.stages import (
    ConsistencyCheckStage,
    ConsistencyError,
    DeletionStage,
    FilterStage,
    OriginStage,
    RouteTableStage,
)

__all__ = [
    "ConsistencyCheckStage",
    "ConsistencyError",
    "DeletionStage",
    "FilterStage",
    "Host",
    "OriginStage",
    "RouteTableStage",
    "XorpProcess",
]
