"""Child-process bootstrap for real OS multi-process deployment.

``python -m repro.bgp --finder 127.0.0.1:PORT ...`` (likewise
``repro.rib`` and ``repro.fea``) builds a :class:`ChildRuntime` — a
real-clock event loop, a
:class:`~repro.xrl.transport.finderd.RemoteFinder` connected to the
parent rtrmgr's Finder daemon, and a :class:`~repro.core.process.Host`
whose transport set includes :class:`~repro.xrl.transport.tcp.TcpFamily`
so XRLs cross the OS-process boundary — then instantiates exactly the
same process class the single-interpreter deployment uses.  The paper's
point (§6.1): processes do not know or care which side of a process
boundary their peers live on.

Only the process-agnostic plumbing lives here; each module's argv
surface is its own ``__main__`` (``repro/rib/__main__.py``, ...), so
this shared package never imports process packages.
"""

from __future__ import annotations

import argparse
import signal
from typing import Optional, Tuple

from repro.core.process import Host
from repro.eventloop import EventLoop
from repro.eventloop.clock import SystemClock
from repro.xrl.transport.finderd import RemoteFinder
from repro.xrl.transport.tcp import TcpFamily


class ChildRuntime:
    """Event loop + remote Finder + TCP-capable Host for one child."""

    def __init__(self, finder_address: str, *, codec: Optional[str] = None):
        self.loop = EventLoop(SystemClock())
        self.finder = RemoteFinder(finder_address, self.loop)
        self.tcp_family = TcpFamily(codec=codec)
        self.host = Host(self.loop, finder=self.finder,
                         extra_families=[self.tcp_family])

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        self.loop.stop()

    def run(self) -> None:
        try:
            self.loop.run()
        finally:
            self.host.shutdown()
            self.finder.close()


def base_parser(prog: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog)
    parser.add_argument("--finder", required=True, metavar="HOST:PORT",
                        help="address of the rtrmgr's Finder daemon")
    parser.add_argument("--codec", default=None,
                        choices=("binary", "textual"),
                        help="XRL frame codec preference for TCP transport")
    return parser


def parse_ifaddr(spec: str) -> Tuple[str, str, int, int]:
    """``eth0=10.0.0.1/24`` or ``eth0=10.0.0.1/24:5`` (with cost)."""
    name, __, rest = spec.partition("=")
    addr_part, __, cost_part = rest.partition(":")
    addr, __, plen = addr_part.partition("/")
    if not name or not addr or not plen:
        raise argparse.ArgumentTypeError(
            f"bad --ifaddr {spec!r}; expected IF=ADDR/PREFIXLEN[:COST]")
    return name, addr, int(plen), int(cost_part) if cost_part else 1


def parse_endpoint(spec: str) -> Tuple[str, Tuple[str, int]]:
    """``PEER=HOST:PORT`` for --bgp-connect."""
    peer, __, rest = spec.partition("=")
    host, __, port = rest.rpartition(":")
    if not peer or not host or not port:
        raise argparse.ArgumentTypeError(
            f"bad --bgp-connect {spec!r}; expected PEER=HOST:PORT")
    return peer, (host, int(port))
