"""The multi-process composition model (paper §4).

    "The XORP control plane implements this functionality diagram as a set
    of communicating processes.  Each routing protocol and management
    function is implemented by a separate process, as are the RIB and the
    FEA. ... This multi-process design limits the coupling between
    components; misbehaving code, such as an experimental routing
    protocol, cannot directly corrupt the memory of another process."

In this Python reproduction a :class:`XorpProcess` is an isolated object
with its own process token; the intra-process XRL family refuses to cross
tokens, so processes really can only interact through XRLs, preserving the
architectural boundary the paper's robustness argument rests on.

A :class:`Host` groups the things processes on one machine share: the
event loop, the Finder, and the protocol family instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eventloop import EventLoop, SimulatedClock
from repro.interfaces import METRICS_IDL
from repro.obs.metrics import MetricsRegistry
from repro.xrl import Finder, XrlRouter
from repro.xrl.idl import XrlInterface
from repro.xrl.router import new_process_token
from repro.xrl.transport import IntraProcessFamily, KillFamily
from repro.xrl.transport.base import ProtocolFamily
from repro.xrl.transport.local import HostLocalFamily


class Host:
    """One machine: a shared event loop, Finder, and transport families."""

    def __init__(self, loop: Optional[EventLoop] = None,
                 finder: Optional[Finder] = None,
                 extra_families: Optional[List[ProtocolFamily]] = None):
        self.loop = loop if loop is not None else EventLoop(SimulatedClock())
        self.finder = finder if finder is not None else Finder()
        self.intra_family = IntraProcessFamily()
        self.local_family = HostLocalFamily()
        self.kill_family = KillFamily()
        self.families: List[ProtocolFamily] = [self.intra_family,
                                               self.local_family]
        if extra_families:
            self.families.extend(extra_families)
        self.processes: Dict[str, "XorpProcess"] = {}

    def add_process(self, process: "XorpProcess") -> None:
        self.processes[process.name] = process

    def shutdown(self) -> None:
        for process in list(self.processes.values()):
            process.shutdown()


class XorpProcess:
    """Base class for one control-plane process (BGP, RIB, FEA, ...).

    Subclasses typically:

    * create one or more components via :meth:`create_router`;
    * bind IDL interfaces to implementation objects;
    * start timers and background tasks on ``self.loop``.
    """

    #: the component class name this process registers under
    process_name = "process"

    def __init__(self, host: Host, name: Optional[str] = None):
        self.host = host
        self.loop = host.loop
        self.name = name if name is not None else self.process_name
        self.process_token = new_process_token()
        self.routers: List[XrlRouter] = []
        #: this process's scrapeable instruments (namespace = process name);
        #: every component created below serves it over ``metrics/1.0``.
        self.metrics = MetricsRegistry(self.name)
        self.loop.register_metrics(self.metrics)
        self._kill_address = host.kill_family.listen(self)
        self._running = True
        host.add_process(self)

    # -- component management ------------------------------------------------
    def create_router(self, class_name: Optional[str] = None, *,
                      singleton: bool = False,
                      instance_name: Optional[str] = None) -> XrlRouter:
        """Create an XRL component endpoint owned by this process."""
        router = XrlRouter(
            self.loop,
            class_name if class_name is not None else self.name,
            self.host.finder,
            instance_name=instance_name,
            singleton=singleton,
            families=list(self.host.families),
            process_token=self.process_token,
        )
        prefix = f"xrl.{router.class_name}"
        if any(r.class_name == router.class_name for r in self.routers):
            prefix = f"{prefix}.{len(self.routers)}"
        self.routers.append(router)
        self.metrics.gauge(f"{prefix}.batches_sent",
                           lambda r=router: r.batches_sent)
        self.metrics.gauge(f"{prefix}.late_replies",
                           lambda r=router: r.late_replies)
        self.metrics.gauge(f"{prefix}.retries",
                           lambda r=router: r.retries_performed)
        router.bind(METRICS_IDL, self.metrics)
        return router

    def bind(self, router: XrlRouter, interface: XrlInterface, impl=None) -> None:
        """Bind *interface* on *router* to *impl* (default: this process)."""
        router.bind(interface, impl if impl is not None else self)

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def on_signal(self, signal_number: int) -> None:
        """Kill protocol family entry point."""
        self.shutdown()

    def shutdown(self) -> None:
        """Deregister all components; subclasses extend to stop timers."""
        if not self._running:
            return
        self._running = False
        for router in self.routers:
            router.shutdown()
        self.host.kill_family.unlisten(self._kill_address)
        self.host.processes.pop(self.name, None)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
