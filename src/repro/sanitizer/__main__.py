"""CLI: ``python -m repro.sanitizer [--scenario NAME ...]``.

Runs the schedule explorer — with the stage and XRL runtime sanitizers
armed inside every run — over registered scenarios.  Exit status 0 when
every schedule agrees and no runtime invariant fired, 1 otherwise: the
dynamic half of the gate that ``python -m repro.analysis`` provides
statically.

Reports are deterministic: the same scenario and seed list produce a
byte-identical ``--json-out`` file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.analysis.core import Finding
from repro.analysis.report import FORMATS, render_findings
from repro.sanitizer import RuntimeSanitizer, explore
from repro.sanitizer.scenarios import get, names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Runtime sanitizer: stage-graph consistency, XRL "
                    "dispatch conformance, and schedule-exploration race "
                    "detection over simulated scenarios.",
    )
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME",
                        help="scenario to explore (repeatable; default: all)")
    parser.add_argument("--seeds", type=int, default=4, metavar="N",
                        help="number of seeded schedule permutations per "
                             "scenario (default: 4)")
    parser.add_argument("--routes", type=int, default=24, metavar="N",
                        help="route count for the routeflow scenario "
                             "(default: 24)")
    parser.add_argument("--format", choices=FORMATS, default="text")
    parser.add_argument("--json-out", metavar="PATH",
                        help="also write the full exploration report (all "
                             "runs, schedules, fingerprints) as JSON")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="print the scenario registry and exit")
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in names():
            print(f"{name}  {get(name).description}")
        return 0

    selected = args.scenarios or names()
    seeds = list(range(1, args.seeds + 1))
    reports = []
    findings: List[Finding] = []
    for name in selected:
        scenario = get(name)
        runner = scenario.runner(route_count=args.routes)
        report = explore(runner, name=name, seeds=seeds,
                         run_sanitizers=RuntimeSanitizer)
        reports.append(report)
        findings.extend(v.to_finding() for v in report.violations)

    if args.json_out:
        payload = {
            "seeds": seeds,
            "scenarios": [report.to_dict() for report in reports],
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    rendered = render_findings(findings, args.format)
    if rendered:
        print(rendered)
    if args.format == "text":
        total_runs = sum(len(report.runs) for report in reports)
        print(f"{len(selected)} scenario(s), {total_runs} run(s), "
              f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
