"""Scenario registry for the schedule explorer.

A scenario is a callable that builds a fresh router constellation on a
:class:`~repro.eventloop.clock.SimulatedClock`, drives it to completion,
and returns a JSON-able fingerprint of *final state only*.  Timings must
stay out of the fingerprint: permuting same-deadline events legitimately
moves timestamps around, and only state divergence is an ordering bug.

A scenario that fails outright (non-convergence, missing routes) under
some schedule returns an error fingerprint instead of raising, so the
failure surfaces as a RACE001 divergence with the schedule attached
rather than an opaque crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class Scenario:
    """One registered exploration target."""

    name: str
    description: str
    build: Callable[..., Callable[[], Dict[str, Any]]]

    def runner(self, **options) -> Callable[[], Dict[str, Any]]:
        return self.build(**options)


def _recovery_runner(**options) -> Callable[[], Dict[str, Any]]:
    from repro.experiments.recovery import run_recovery

    def run() -> Dict[str, Any]:
        try:
            run_recovery(seed=7)
        except RuntimeError as exc:
            return {"converged": False, "error": str(exc)}
        # Restart counts and retry totals shift legitimately with event
        # order; the schedule-independent claim is: the process dies, is
        # restarted, and the network reconverges.
        return {"converged": True}

    return run


def _routeflow_runner(*, route_count: int = 24,
                      **options) -> Callable[[], Dict[str, Any]]:
    from repro.experiments.routeflow import run_route_flow

    def run() -> Dict[str, Any]:
        try:
            result = run_route_flow(kinds=["xorp"], route_count=route_count)
        except RuntimeError as exc:
            return {"arrived": -1, "error": str(exc)}
        series = result.series["xorp"]
        # The injection offset (index+1)*interval identifies a prefix
        # independently of when it arrived, so the sorted offsets are a
        # state fingerprint: exactly which routes reached the sink.
        return {
            "arrived": len(series),
            "injected_offsets": [round(t, 6) for t, __ in series],
        }

    return run


def _backendflow_runner(*, routes: int = 32,
                        **options) -> Callable[[], Dict[str, Any]]:
    from repro.experiments.resilience import run_backend_resilience

    def run() -> Dict[str, Any]:
        try:
            result = run_backend_resilience(seed=7, routes=routes)
        except RuntimeError as exc:
            return {"converged": False, "error": str(exc)}
        # Retry/defer counts shift legitimately with event order; the
        # schedule-independent claim is: the backend crashes, the shadow
        # keeps serving, and reconciliation restores dump == shadow.
        return {
            "converged": True,
            "served_during_outage": result.served_during_outage,
        }

    return run


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            "recovery",
            "seeded kill/restart/reconverge run (repro.experiments.recovery)",
            _recovery_runner),
        Scenario(
            "routeflow",
            "Figure 13 route propagation through the full XORP stack "
            "(repro.experiments.routeflow, xorp kind)",
            _routeflow_runner),
        Scenario(
            "backendflow",
            "FIB backend crash/churn/reconcile under seeded faults "
            "(repro.experiments.resilience)",
            _backendflow_runner),
    ]
}


def names() -> List[str]:
    return sorted(SCENARIOS)


def get(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(names())}")
