"""Structured runtime findings — the dynamic twin of analysis.Finding.

A :class:`Violation` is one observed breach of a runtime invariant.  It
deliberately reuses the rule catalogue in :mod:`repro.analysis.core`
(rules SAN001–SAN103, RACE001) and converts losslessly to a static
:class:`~repro.analysis.core.Finding`, so both CLIs share the same
text/json/github renderers and CI plumbing.

Where a static finding points at ``path:line``, a runtime violation
points at an *origin*: a stage edge (``peer-in->decision``), an XRL
dispatch point (``bgp -> rib rib/1.0/add_route4``), or a scenario's
schedule (``schedule:recovery``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.core import RULES, Finding


@dataclass(frozen=True)
class Violation:
    """One runtime invariant breach: which rule, where, and why."""

    rule: str
    origin: str
    message: str
    #: arrival order within one sanitizer session (stable tie-breaker)
    seq: int = 0
    #: rule-specific structured payload (schedules, prefixes, args, ...)
    context: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        assert self.rule in RULES, f"unknown rule id {self.rule!r}"

    def render(self) -> str:
        return f"{self.origin}: {self.rule} {self.message}"

    def to_finding(self) -> Finding:
        """Project onto the static Finding shape shared with repro.analysis."""
        return Finding(path=self.origin, line=max(self.seq, 1),
                       rule=self.rule, message=self.message)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule,
            "origin": self.origin,
            "message": self.message,
            "seq": self.seq,
        }
        if self.context:
            data["context"] = self.context
        return data


class ViolationLog:
    """Shared ordered sink the sanitizer pieces append to."""

    def __init__(self) -> None:
        self._violations: List[Violation] = []

    def record(self, rule: str, origin: str, message: str,
               context: Optional[Dict[str, Any]] = None) -> Violation:
        violation = Violation(rule=rule, origin=origin, message=message,
                              seq=len(self._violations) + 1,
                              context=dict(context or {}))
        self._violations.append(violation)
        return violation

    @property
    def violations(self) -> List[Violation]:
        return list(self._violations)

    def __len__(self) -> int:
        return len(self._violations)

    def clear(self) -> None:
        self._violations.clear()
