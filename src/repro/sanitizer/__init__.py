"""repro.sanitizer — runtime twin of the static lint suite.

Three cooperating pieces, all reporting through the shared rule
catalogue in :mod:`repro.analysis.core`:

* :mod:`repro.sanitizer.stagesan` — §5 consistency rules checked on
  every live stage-graph edge (SAN001–004);
* :mod:`repro.sanitizer.xrlsan` — IDL conformance at the XRL dispatch
  boundary (SAN101–103);
* :mod:`repro.sanitizer.schedule` — deterministic exploration of
  same-deadline event orderings, reporting state divergence (RACE001);
* :mod:`repro.sanitizer.protocheck` — dynamic/static agreement: every
  XRL edge observed by the :mod:`repro.obs` tracer must be explained by
  the static protocol graph from :mod:`repro.analysis.protograph`.

``python -m repro.sanitizer`` runs the explorer (with the runtime
sanitizers armed) over registered scenarios; the ``runtime_sanitizers``
pytest fixture in ``tests/conftest.py`` arms the first two pieces
inside ordinary integration tests.
"""

from repro.sanitizer.protocheck import (
    runtime_xrl_edges,
    site_package,
    unexplained_edges,
)
from repro.sanitizer.report import Violation, ViolationLog
from repro.sanitizer.runtime import RuntimeSanitizer
from repro.sanitizer.schedule import (
    ExplorationReport,
    ScheduleShuffler,
    explore,
)
from repro.sanitizer.stagesan import StageSanitizer
from repro.sanitizer.xrlsan import XrlDispatchSanitizer

__all__ = [
    "ExplorationReport",
    "RuntimeSanitizer",
    "ScheduleShuffler",
    "StageSanitizer",
    "Violation",
    "ViolationLog",
    "XrlDispatchSanitizer",
    "explore",
    "runtime_xrl_edges",
    "site_package",
    "unexplained_edges",
]
