"""Dynamic/static agreement: observed XRL edges ⊆ the protocol graph.

The static pass (:mod:`repro.analysis.protograph`) claims to know every
inter-process XRL edge the system can take.  This module checks that
claim against reality: every ``xrl-send``/``xrl-recv`` span pair the
:mod:`repro.obs` tracer recorded at runtime must be explained by the
static graph — either by a resolved static edge, or by a declared
*dynamic* send site (the CLI's ``call <xrl>`` facility, which can emit
anything at runtime and is recorded as a wildcard for its package).

A runtime edge that no static edge or dynamic site explains means the
static analysis has a blind spot — exactly the regression this check is
wired into the integration tests to catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: runtime router-class spellings that differ from their package name
DEFAULT_SITE_ALIASES = {
    "static_routes": "staticroutes",
}

#: (sender site, receiver site, method) — one observed XRL hop
RuntimeEdge = Tuple[str, str, str]


def runtime_xrl_edges(tracer) -> Set[RuntimeEdge]:
    """Every observed XRL hop: (send-site, recv-site, method).

    An ``xrl-recv`` span's parent is the ``xrl-send`` span that carried
    the frame (stitched across processes via the reserved ``trace_ctx``
    atom), so pairing each recv with its parent reconstructs the edge.
    """
    edges: Set[RuntimeEdge] = set()
    for ctx in tracer.contexts():
        by_id = {span.span_id: span for span in ctx.spans}
        for span in ctx.spans:
            if span.kind != "xrl-recv" or span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None or parent.kind != "xrl-send":
                continue
            edges.add((parent.site, span.site, span.op))
    return edges


def site_package(site: str, packages: Dict[str, dict],
                 site_map: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Map a runtime span site (router class name) to a graph package.

    Router class names usually equal their package (``bgp`` → bgp);
    numbered instances (``bgp2``) strip trailing digits, and known
    aliases (``static_routes`` → staticroutes) are applied.  Returns
    None when the site maps to no package in the graph.
    """
    if site_map and site in site_map:
        return site_map[site]
    candidates = [site, site.rstrip("0123456789") or site]
    candidates += [DEFAULT_SITE_ALIASES.get(c, c) for c in list(candidates)]
    for candidate in candidates:
        if candidate in packages:
            return candidate
    return None


def _graph_data(graph) -> dict:
    return graph.to_json_dict() if hasattr(graph, "to_json_dict") else graph


def unexplained_edges(tracer, graph,
                      site_map: Optional[Dict[str, str]] = None
                      ) -> List[str]:
    """Runtime edges the static protocol graph cannot explain.

    Returns human-readable problem strings (empty list = full dynamic ⊆
    static agreement).  *graph* is a
    :class:`~repro.analysis.protograph.ProtocolGraph` or its JSON dict.
    """
    data = _graph_data(graph)
    packages: Dict[str, dict] = data["packages"]
    shared = {name for name, info in packages.items()
              if info["kind"] == "shared"}
    dynamic_senders = set(data.get("dynamic_senders", {}))
    static_edges = data["edges"]
    problems: List[str] = []
    for send_site, recv_site, method in sorted(runtime_xrl_edges(tracer)):
        label = f"{send_site} -> {recv_site} ({method})"
        src = site_package(send_site, packages, site_map)
        dst = site_package(recv_site, packages, site_map)
        if src is None:
            problems.append(f"{label}: sender site {send_site!r} maps to "
                            f"no package in the static graph")
            continue
        if dst is None:
            problems.append(f"{label}: receiver site {recv_site!r} maps to "
                            f"no package in the static graph")
            continue
        explained = any(
            edge["from"] == src and method in edge["methods"]
            and (edge["to"] == dst or edge["to"] in shared)
            for edge in static_edges
        )
        # A package with a dynamic send site (the CLI's textual call_xrl)
        # can legitimately emit XRLs the static pass could not resolve.
        if not explained and src in dynamic_senders:
            explained = True
        if not explained:
            problems.append(
                f"{label}: no static edge {src} -> {dst} carries "
                f"{method!r} and {src!r} has no dynamic send site")
    return problems
