"""Deterministic schedule exploration (DPOR-lite for the event loop).

Paper §4's event model gives no ordering guarantee between two timers
that share a deadline, two callbacks deferred in the same iteration, or
two runnable background tasks at one priority.  Correct code therefore
must not care — and this module exists to find the code that does.

A :class:`ScheduleShuffler` patches the three dispatch points of one run
(the deferred-callback drain, the expired-timer batch, and the
background-task pick) to permute *only* the choices the contract leaves
open, driven by a seeded :class:`random.Random`.  Every choice made is
recorded, so a run is fully described by its scenario plus its seed.

:func:`explore` executes a scenario under the identity schedule and
under N seeded permutations, fingerprints the final state of each run,
and reports any divergence as a RACE001 violation carrying the two
minimal divergent schedules (both traces, trimmed to the first choice
point where they differ) — enough to replay either side exactly.

Everything here is deterministic: same scenario + same seeds produce a
byte-identical report.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.eventloop.eventloop import EventLoop
from repro.eventloop.tasks import TaskScheduler
from repro.eventloop.timers import TimerList
from repro.sanitizer.report import Violation, ViolationLog


def _callback_name(cb: Callable) -> str:
    """A stable, address-free label for a callback."""
    name = getattr(cb, "__qualname__", None)
    if name is None:
        name = type(cb).__name__
    return name


@dataclass(frozen=True)
class ChoicePoint:
    """One recorded scheduling decision among interchangeable events."""

    index: int
    kind: str              # "deferred" | "timer" | "task"
    time: float            # event-loop clock at the decision
    ready: Tuple[str, ...]  # labels of the interchangeable events
    order: Tuple[int, ...]  # permutation applied to *ready*

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "time": round(self.time, 9),
            "ready": list(self.ready),
            "order": list(self.order),
        }


class ScheduleShuffler:
    """Permutes same-deadline dispatch while armed; records every choice.

    ``seed=None`` is the identity schedule: nothing is permuted, but
    choice points are still recorded, giving the baseline trace that
    divergent traces are compared against.
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.rng = random.Random(seed) if seed is not None else None
        self.trace: List[ChoicePoint] = []
        self._saved: List[Tuple[type, str, Any]] = []
        self._armed = False

    # -- choices -----------------------------------------------------------
    def _permutation(self, count: int) -> List[int]:
        order = list(range(count))
        if self.rng is not None:
            self.rng.shuffle(order)
        return order

    def _choose(self, kind: str, time: float, ready: Sequence[str]) -> List[int]:
        order = self._permutation(len(ready))
        self.trace.append(ChoicePoint(
            index=len(self.trace), kind=kind, time=time,
            ready=tuple(ready), order=tuple(order)))
        return order

    # -- arming ------------------------------------------------------------
    def arm(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._patch(EventLoop, "_drain_deferred", self._make_drain())
        self._patch(TimerList, "run_expired", self._make_run_expired())
        self._patch(TaskScheduler, "run_one_slice", self._make_run_one_slice())

    def disarm(self) -> None:
        if not self._armed:
            return
        for cls, name, original in reversed(self._saved):
            setattr(cls, name, original)
        self._saved.clear()
        self._armed = False

    def _patch(self, cls: type, name: str, replacement) -> None:
        self._saved.append((cls, name, cls.__dict__[name]))
        setattr(cls, name, replacement)

    def __enter__(self) -> "ScheduleShuffler":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- the three patched dispatch points ---------------------------------
    def _make_drain(self):
        shuffler = self

        def _drain_deferred(loop: EventLoop) -> None:
            batch = []
            for __ in range(len(loop._deferred)):
                if not loop._deferred:
                    break
                batch.append(loop._deferred.popleft())
            if len(batch) > 1:
                order = shuffler._choose(
                    "deferred", loop.clock.now(),
                    [_callback_name(cb) for cb, __ in batch])
                batch = [batch[i] for i in order]
            for cb, args in batch:
                cb(*args)

        return _drain_deferred

    def _make_run_expired(self):
        shuffler = self

        def run_expired(timers: TimerList, limit: int = 64) -> int:
            now = timers.clock.now()
            entries = []
            while len(entries) < limit:
                entry = timers._pop_ready(now)
                if entry is None:
                    break
                entries.append(entry)
            # Permute within runs of equal expiry only: ordering between
            # *different* deadlines is guaranteed and must be preserved.
            order: List[int] = []
            start = 0
            while start < len(entries):
                stop = start
                expiry = entries[start][0]._expiry
                while (stop < len(entries)
                       and entries[stop][0]._expiry == expiry):
                    stop += 1
                group = list(range(start, stop))
                if len(group) > 1:
                    perm = shuffler._choose(
                        "timer", expiry,
                        [entries[i][0].name for i in group])
                    group = [group[i] for i in perm]
                order.extend(group)
                start = stop
            fired = 0
            for index in order:
                timer, gen = entries[index]
                # An earlier sibling may have cancelled or rescheduled
                # this timer after we popped it; honour that.
                if not timer._scheduled or timer._gen != gen:
                    continue
                if timer._interval is None:
                    timer._scheduled = False
                timer._fire()
                fired += 1
            return fired

        return run_expired

    def _make_run_one_slice(self):
        shuffler = self

        def run_one_slice(scheduler: TaskScheduler) -> bool:
            for priority in sorted(scheduler._queues):
                queue = scheduler._queues[priority]
                alive = [t for t in queue if t.alive]
                if not alive:
                    queue.clear()
                    continue
                index = 0
                if len(alive) > 1:
                    order = shuffler._choose(
                        "task", -1.0, [t.name for t in alive])
                    index = order[0]
                task = alive[index]
                queue.remove(task)
                more = task._run_slice()
                if more and task.alive:
                    queue.append(task)
                return True
            return False

        return run_one_slice

    def trace_dicts(self) -> List[Dict[str, Any]]:
        return [point.to_dict() for point in self.trace]


# -- exploration -----------------------------------------------------------

@dataclass
class RunResult:
    """One scenario execution under one schedule."""

    seed: Optional[int]
    fingerprint: Any
    trace: List[Dict[str, Any]]
    violations: List[Violation] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "choice_points": len(self.trace),
            "violations": [v.to_dict() for v in self.violations],
        }


def _first_divergence(a: List[Dict[str, Any]],
                      b: List[Dict[str, Any]]) -> int:
    for index, (pa, pb) in enumerate(zip(a, b)):
        if pa != pb:
            return index
    return min(len(a), len(b))


def _fingerprint_diff(baseline: Any, other: Any) -> str:
    if isinstance(baseline, dict) and isinstance(other, dict):
        keys = sorted(k for k in set(baseline) | set(other)
                      if baseline.get(k) != other.get(k))
        return ", ".join(
            f"{k}: {baseline.get(k)!r} vs {other.get(k)!r}" for k in keys)
    return f"{baseline!r} vs {other!r}"


@dataclass
class ExplorationReport:
    """All runs of one scenario plus any divergence findings."""

    scenario: str
    runs: List[RunResult]
    log: ViolationLog

    @property
    def baseline(self) -> RunResult:
        return self.runs[0]

    @property
    def violations(self) -> List[Violation]:
        return self.log.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "runs": [run.to_dict() for run in self.runs],
            "violations": [v.to_dict() for v in self.log.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def explore(scenario: Callable[[], Any], *, name: str,
            seeds: Sequence[int],
            run_sanitizers: Optional[Callable[[], Any]] = None
            ) -> ExplorationReport:
    """Run *scenario* under the identity schedule plus one run per seed.

    *scenario* must build its own event loop (SimulatedClock) and return
    a JSON-able fingerprint of final state — routes, peers, convergence —
    and **not** timings, which legitimately vary across schedules.

    *run_sanitizers*, when given, is called before each run and must
    return an object with ``arm()``/``disarm()`` and ``violations``
    (a :class:`~repro.sanitizer.runtime.RuntimeSanitizer`): runtime
    violations are then attributed to the run that produced them.
    """
    log = ViolationLog()
    runs: List[RunResult] = []
    for seed in [None] + [int(s) for s in seeds]:
        shuffler = ScheduleShuffler(seed)
        sanitizer = run_sanitizers() if run_sanitizers is not None else None
        if sanitizer is not None:
            sanitizer.arm()
        try:
            with shuffler:
                fingerprint = scenario()
        finally:
            if sanitizer is not None:
                sanitizer.disarm()
        runs.append(RunResult(
            seed=seed, fingerprint=fingerprint,
            trace=shuffler.trace_dicts(),
            violations=sanitizer.violations if sanitizer is not None else []))

    baseline = runs[0]
    reported_fingerprints = set()
    for run in runs[1:]:
        for violation in run.violations:
            log.record(violation.rule, violation.origin,
                       f"under schedule seed {run.seed}: {violation.message}",
                       dict(violation.context, seed=run.seed))
        if run.fingerprint == baseline.fingerprint:
            continue
        key = json.dumps(run.fingerprint, sort_keys=True, default=str)
        if key in reported_fingerprints:
            continue
        reported_fingerprints.add(key)
        index = _first_divergence(baseline.trace, run.trace)
        log.record(
            "RACE001", f"schedule:{name}",
            f"final state diverges under schedule permutation seed "
            f"{run.seed}: {_fingerprint_diff(baseline.fingerprint, run.fingerprint)}; "
            f"schedules first differ at choice point {index}",
            {
                "seed": run.seed,
                "first_divergent_choice": index,
                "baseline_schedule": baseline.trace[:index + 1],
                "divergent_schedule": run.trace[:index + 1],
                "baseline_fingerprint": baseline.fingerprint,
                "divergent_fingerprint": run.fingerprint,
            })
    # Baseline-run sanitizer violations are schedule-independent bugs;
    # report them too (without a seed annotation).
    for violation in baseline.violations:
        log.record(violation.rule, violation.origin, violation.message,
                   dict(violation.context))
    return ExplorationReport(scenario=name, runs=runs, log=log)
