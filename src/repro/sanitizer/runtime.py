"""RuntimeSanitizer: the stage + XRL sanitizers behind one switch.

This is what the pytest fixture and the CLI arm: both pieces share one
:class:`~repro.sanitizer.report.ViolationLog`, so ``violations`` is a
single ordered stream across the stage graph and the XRL boundary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sanitizer.report import Violation, ViolationLog
from repro.sanitizer.stagesan import StageSanitizer
from repro.sanitizer.xrlsan import XrlDispatchSanitizer


class RuntimeSanitizer:
    """Arms/disarms the stage-graph and XRL-dispatch sanitizers together."""

    def __init__(self, *, strict_lookup: bool = False,
                 log: Optional[ViolationLog] = None):
        self.log = log if log is not None else ViolationLog()
        self.stages = StageSanitizer(self.log, strict_lookup=strict_lookup)
        self.xrl = XrlDispatchSanitizer(self.log)

    def arm(self) -> None:
        self.stages.arm()
        try:
            self.xrl.arm()
        except Exception:
            self.stages.disarm()
            raise

    def disarm(self) -> None:
        self.xrl.disarm()
        self.stages.disarm()

    def __enter__(self) -> "RuntimeSanitizer":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    @property
    def violations(self) -> List[Violation]:
        return self.log.violations
