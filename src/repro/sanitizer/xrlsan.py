"""XRL dispatch sanitizer — IDL conformance at the runtime boundary.

``repro.analysis`` rules XRL001–006 resolve statically every XRL whose
interface/method/arguments are literal in the source.  XRLs assembled
dynamically (method names from variables, args built in loops) escape
that net; this sanitizer closes it by validating every ``XrlRouter.send``
against the :mod:`repro.interfaces` catalogue at the moment of dispatch,
turning would-be deep-in-handler failures into structured SAN101–103
reports at the boundary — the analogue of XORP's marshaling checks.

``bench/1.0`` is exempt by default: the scaling experiments deliberately
serve it raw with varying atoms (see ``repro.interfaces``).

Arming replaces ``XrlRouter.send`` at class level; disarming restores
the original, so the disarmed path carries zero overhead.
"""

from __future__ import annotations

import functools
from typing import Dict, FrozenSet, Optional

from repro import interfaces
from repro.obs.trace import TRACE_ARG
from repro.sanitizer.report import ViolationLog
from repro.xrl import Xrl, XrlArgs, XrlError, XrlInterface, XrlRouter

#: interfaces intentionally dispatched without IDL conformance
DEFAULT_EXEMPT: FrozenSet[str] = frozenset({"bench/1.0"})

_armed_sanitizer: Optional["XrlDispatchSanitizer"] = None


class XrlDispatchSanitizer:
    """Validates every dispatched XRL against the IDL catalogue."""

    def __init__(self, log: Optional[ViolationLog] = None, *,
                 exempt: FrozenSet[str] = DEFAULT_EXEMPT):
        self.log = log if log is not None else ViolationLog()
        self.exempt = frozenset(exempt)
        self.checked = 0
        self._catalogue: Dict[str, XrlInterface] = {}
        self._original_send = None
        self._armed = False

    # -- lifecycle ---------------------------------------------------------
    def arm(self) -> None:
        global _armed_sanitizer
        if self._armed:
            return
        if _armed_sanitizer is not None:
            raise RuntimeError("another XrlDispatchSanitizer is already armed")
        _armed_sanitizer = self
        self._armed = True
        self._catalogue = interfaces.catalogue()
        original = XrlRouter.__dict__["send"]
        self._original_send = original
        sanitizer = self

        @functools.wraps(original)
        def send(router, xrl, callback=None, *, deadline=None, retry=None,
                 batch=False):
            sanitizer._observe(router, xrl)
            return original(router, xrl, callback,
                            deadline=deadline, retry=retry, batch=batch)

        send._repro_sanitizer_original = original  # type: ignore[attr-defined]
        XrlRouter.send = send

    def disarm(self) -> None:
        global _armed_sanitizer
        if not self._armed:
            return
        XrlRouter.send = self._original_send
        self._original_send = None
        self._armed = False
        _armed_sanitizer = None

    def __enter__(self) -> "XrlDispatchSanitizer":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    @property
    def violations(self):
        return self.log.violations

    # -- the check ---------------------------------------------------------
    def _observe(self, router: XrlRouter, xrl: Xrl) -> None:
        fullname = f"{xrl.interface}/{xrl.version}"
        if fullname in self.exempt:
            return
        self.checked += 1
        origin = (f"{router.instance_name} -> {xrl.target} "
                  f"{xrl.method_path}")
        iface = self._catalogue.get(fullname)
        if iface is None:
            self.log.record(
                "SAN101", origin,
                f"dispatched XRL names interface {fullname!r}, absent from "
                "the IDL catalogue",
                {"interface": fullname})
            return
        method = iface.methods.get(xrl.method)
        if method is None:
            self.log.record(
                "SAN102", origin,
                f"interface {fullname!r} declares no method {xrl.method!r}",
                {"interface": fullname, "method": xrl.method})
            return
        args = xrl.args
        if args.has(TRACE_ARG):
            # The reserved obs trace-context atom rides outside every IDL
            # signature (like bench/1.0 it is deliberately unchecked):
            # strip it before conformance checking so an armed tracer and
            # an armed sanitizer compose.
            args = XrlArgs([a for a in args if a.name != TRACE_ARG])
        try:
            method.check_args(args)
        except XrlError as exc:
            self.log.record(
                "SAN103", origin,
                f"arguments disagree with the IDL signature: {exc}",
                {"interface": fullname, "method": xrl.method,
                 "args": sorted(atom.name for atom in args)})
