"""Stage-graph consistency sanitizer (paper §5's rules, every edge).

The paper ships one debugging aid for the staged routing tables — a
cache stage spliced into a single pipeline position.  This sanitizer
generalises it: when armed it rebinds the stage-API message methods
(singular and batch) on *every* ``RouteTableStage`` subclass (present
and future, via the hook registry in :mod:`repro.core.stages`) and
shadows the route stream on every inter-stage edge, asserting both §5
consistency rules:

1. no ``add_route`` for a prefix already live on that edge without an
   intervening ``delete_route``, and every ``delete_route`` /
   ``replace_route`` names a previously propagated route (SAN001–003);
2. ``lookup_route`` answers agree with the messages previously sent
   down the same edge (SAN004).

Shadow state is keyed per *(caller, receiver)* edge, because
multi-parent stages (merge, decision) legitimately hold the same prefix
live from several parents at once.  Dynamic splicing is handled by
migrating edge state when ``insert_downstream``/``unplumb`` rewires a
pipeline, and a cooperative ``stream_reset`` notification lets code
that legitimately wipes state without deletes (BGP output branches on
session loss) drop the shadow instead of tripping SAN002 later.

When disarmed the original functions are restored — there is no
residual ``if`` in the message hot path (see the benchmark gate).
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import stages as _stages
from repro.sanitizer.report import ViolationLog

#: the paper's stage message API plus the plumbing ops we must track
_MESSAGE_METHODS = ("add_route", "delete_route", "replace_route",
                    "lookup_route", "add_routes", "delete_routes")
_PLUMBING_METHODS = ("insert_downstream", "unplumb")

_armed_sanitizer: Optional["StageSanitizer"] = None


def _label(stage: Any) -> str:
    if stage is None:
        return "(external)"
    return getattr(stage, "name", None) or type(stage).__name__


class StageSanitizer:
    """Arms §5 consistency checking on every stage edge."""

    def __init__(self, log: Optional[ViolationLog] = None, *,
                 strict_lookup: bool = False):
        self.log = log if log is not None else ViolationLog()
        self.strict_lookup = strict_lookup
        #: (caller, receiver) -> {net: route} — the live set per edge
        self._edges: Dict[Tuple[Any, Any], Dict[Any, Any]] = {}
        self._wrapped: List[Tuple[type, str, Any]] = []
        self._in_flight: Set[int] = set()
        self._seen: Set[Tuple[str, str, str]] = set()
        self.duplicates_suppressed = 0
        self._armed = False

    # -- lifecycle ---------------------------------------------------------
    def arm(self) -> None:
        global _armed_sanitizer
        if self._armed:
            return
        if _armed_sanitizer is not None:
            raise RuntimeError("another StageSanitizer is already armed")
        _armed_sanitizer = self
        self._armed = True
        _stages.install_stage_instrumentation(self._instrument_class)
        _stages.add_stream_reset_listener(self._on_stream_reset)

    def disarm(self) -> None:
        global _armed_sanitizer
        if not self._armed:
            return
        _stages.uninstall_stage_instrumentation(self._instrument_class)
        _stages.remove_stream_reset_listener(self._on_stream_reset)
        for cls, name, original in reversed(self._wrapped):
            setattr(cls, name, original)
        self._wrapped.clear()
        self._edges.clear()
        self._in_flight.clear()
        self._armed = False
        _armed_sanitizer = None

    def __enter__(self) -> "StageSanitizer":
        self.arm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    @property
    def violations(self):
        return self.log.violations

    # -- class instrumentation --------------------------------------------
    def _instrument_class(self, cls: type) -> None:
        for name in _MESSAGE_METHODS + _PLUMBING_METHODS:
            fn = cls.__dict__.get(name)
            if fn is None or hasattr(fn, "_repro_sanitizer_original"):
                continue
            wrapper = self._make_wrapper(name, fn)
            wrapper._repro_sanitizer_original = fn  # type: ignore[attr-defined]
            setattr(cls, name, wrapper)
            self._wrapped.append((cls, name, fn))

    def _make_wrapper(self, name: str, original):
        sanitizer = self

        if name == "add_route":
            @functools.wraps(original)
            def wrapper(stage, route, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, route, caller=caller)
                sanitizer._in_flight.add(marker)
                try:
                    sanitizer._observe_add(stage, route, caller)
                    return original(stage, route, caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)

        elif name == "delete_route":
            @functools.wraps(original)
            def wrapper(stage, route, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, route, caller=caller)
                sanitizer._in_flight.add(marker)
                try:
                    sanitizer._observe_delete(stage, route, caller)
                    return original(stage, route, caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)

        elif name == "replace_route":
            @functools.wraps(original)
            def wrapper(stage, old_route, new_route, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, old_route, new_route,
                                    caller=caller)
                sanitizer._in_flight.add(marker)
                try:
                    sanitizer._observe_replace(stage, old_route, new_route,
                                               caller)
                    return original(stage, old_route, new_route,
                                    caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)

        elif name == "lookup_route":
            @functools.wraps(original)
            def wrapper(stage, net, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, net, caller=caller)
                sanitizer._in_flight.add(marker)
                try:
                    result = original(stage, net, caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)
                sanitizer._observe_lookup(stage, net, caller, result)
                return result

        elif name == "add_routes":
            @functools.wraps(original)
            def wrapper(stage, routes, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, routes, caller=caller)
                # A batch is its singular decomposition (the batch
                # contract): observe each constituent in order, so SAN
                # verdicts are identical batched or unbatched.
                routes = list(routes)
                sanitizer._in_flight.add(marker)
                try:
                    for route in routes:
                        sanitizer._observe_add(stage, route, caller)
                    return original(stage, routes, caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)

        elif name == "delete_routes":
            @functools.wraps(original)
            def wrapper(stage, routes, *, caller=None):
                marker = id(stage)
                if marker in sanitizer._in_flight:
                    return original(stage, routes, caller=caller)
                routes = list(routes)
                sanitizer._in_flight.add(marker)
                try:
                    for route in routes:
                        sanitizer._observe_delete(stage, route, caller)
                    return original(stage, routes, caller=caller)
                finally:
                    sanitizer._in_flight.discard(marker)

        elif name == "insert_downstream":
            @functools.wraps(original)
            def wrapper(stage, new_stage):
                old_down = stage.next_table
                result = original(stage, new_stage)
                if old_down is not None:
                    sanitizer._migrate_edge((stage, old_down),
                                            (new_stage, old_down))
                return result

        else:  # unplumb
            @functools.wraps(original)
            def wrapper(stage):
                upstream, downstream = stage.parent, stage.next_table
                result = original(stage)
                if upstream is not None:
                    sanitizer._drop_edge((upstream, stage))
                if downstream is not None:
                    if upstream is not None:
                        sanitizer._migrate_edge((stage, downstream),
                                                (upstream, downstream))
                    else:
                        sanitizer._drop_edge((stage, downstream))
                return result

        return wrapper

    # -- edge state --------------------------------------------------------
    def _migrate_edge(self, src: Tuple[Any, Any], dst: Tuple[Any, Any]) -> None:
        state = self._edges.pop(src, None)
        if state:
            self._edges.setdefault(dst, {}).update(state)

    def _drop_edge(self, key: Tuple[Any, Any]) -> None:
        self._edges.pop(key, None)

    def _on_stream_reset(self, stages: tuple) -> None:
        affected = set(map(id, stages))
        for key in [k for k in self._edges
                    if id(k[0]) in affected or id(k[1]) in affected]:
            del self._edges[key]

    # -- observations ------------------------------------------------------
    def _record(self, rule: str, origin: str, message: str, **context) -> None:
        # Report each (rule, prefix) once.  Observation happens on entry,
        # before the stage forwards, so the first report names the most
        # upstream edge — a duplicate add at the head of a pipeline would
        # otherwise cascade into one finding per downstream edge and bury
        # the origin.
        key = (rule, str(context.get("net", "")))
        if key in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen.add(key)
        self.log.record(rule, origin, message, context)

    def _observe_add(self, stage, route, caller) -> None:
        edge = (caller, stage)
        live = self._edges.setdefault(edge, {})
        net = route.net
        origin = f"{_label(caller)}->{_label(stage)}"
        if net in live:
            self._record(
                "SAN001", origin,
                f"add_route for {net} but it is already live on this edge "
                "without an intervening delete_route", net=str(net))
        live[net] = route

    def _observe_delete(self, stage, route, caller) -> None:
        edge = (caller, stage)
        live = self._edges.setdefault(edge, {})
        net = route.net
        if net not in live:
            self._record(
                "SAN002", f"{_label(caller)}->{_label(stage)}",
                f"delete_route for {net} without a previously propagated "
                "add_route on this edge", net=str(net))
            return
        del live[net]

    def _observe_replace(self, stage, old_route, new_route, caller) -> None:
        edge = (caller, stage)
        live = self._edges.setdefault(edge, {})
        old_net, new_net = old_route.net, new_route.net
        if old_net not in live:
            self._record(
                "SAN003", f"{_label(caller)}->{_label(stage)}",
                f"replace_route for {old_net} but that prefix was never "
                "added on this edge", net=str(old_net))
        else:
            del live[old_net]
        live[new_net] = new_route

    def _observe_lookup(self, stage, net, caller, result) -> None:
        if caller is None:
            return
        # For the data stream flowing (stage -> caller), the asking stage
        # is the receiver: lookups travel upstream against the flow.
        live = self._edges.get((stage, caller))
        origin = f"{_label(stage)}->{_label(caller)}"
        if live is not None and net in live:
            expected = live[net]
            if result is None:
                self._record(
                    "SAN004", origin,
                    f"lookup_route({net}) answered None but that prefix is "
                    "live on this edge (rule 2)", net=str(net))
            elif getattr(result, "net", None) != expected.net:
                self._record(
                    "SAN004", origin,
                    f"lookup_route({net}) answered a route for "
                    f"{getattr(result, 'net', None)}, inconsistent with the "
                    f"announced route for {expected.net} (rule 2)",
                    net=str(net))
        elif self.strict_lookup and result is not None:
            self._record(
                "SAN004", origin,
                f"lookup_route({net}) found a route never announced on "
                "this edge (rule 2, strict)", net=str(net))
