"""XRL-controlled profiling points (paper §8.2)."""

from repro.profiler.profiler import PROFILER_IDL, Profiler, ProfileVar

__all__ = ["PROFILER_IDL", "ProfileVar", "Profiler"]
