"""Profiling points, configured externally through XRLs.

    "XORP contains a simple profiling mechanism which permits the
    insertion of profiling points anywhere in the code.  Each profiling
    point is associated with a profiling variable, and these variables are
    configured by an external program xorp_profiler using XRLs.  Enabling
    a profiling point causes a time stamped record to be stored, such as:

        route_ribin 1097173928 664085 add 10.0.1.0/24"

The latency experiments (Figures 10-12) are driven entirely through this
mechanism: every hop a route takes from "entering BGP" to "entering the
kernel" logs through a :class:`ProfileVar`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eventloop.clock import Clock

# The profile/1.0 IDL lives in the central catalogue (repro.interfaces)
# with every other inter-process API; re-exported here for callers that
# bind the profiler without caring where the declaration lives.
from repro.interfaces import PROFILER_IDL


class ProfileVar:
    """One named profiling point."""

    __slots__ = ("name", "enabled", "entries", "_clock")

    def __init__(self, name: str, clock: Clock):
        self.name = name
        self.enabled = False
        self.entries: List[Tuple[float, str]] = []
        self._clock = clock

    def log(self, data: str) -> None:
        """Store a timestamped record iff the variable is enabled.

        The disabled path is a single attribute test, so leaving profile
        points in hot code is nearly free — the property the paper's
        mechanism depends on.
        """
        if self.enabled:
            self.entries.append((self._clock.now(), data))

    def log_op(self, op: str, obj: object) -> None:
        """``log(f"{op} {obj}")`` with the formatting done lazily.

        Hot-path callers must not build the record string when the point
        is disabled — on a 1M-route flush that is a million f-strings for
        nothing.  The stringification happens inside the enabled test.
        """
        if self.enabled:
            self.entries.append((self._clock.now(), f"{op} {obj}"))

    def format_entries(self) -> List[str]:
        """Render records in the paper's format: name, secs, usecs, data."""
        lines = []
        for timestamp, data in self.entries:
            seconds = int(timestamp)
            microseconds = int(round((timestamp - seconds) * 1e6))
            lines.append(f"{self.name} {seconds} {microseconds:06d} {data}")
        return lines


class Profiler:
    """The per-process registry of profiling variables.

    Also implements the ``profile/1.0`` XRL interface, so an external
    program (the paper's ``xorp_profiler``) can enable points and collect
    records over IPC; bind with ``router.bind(PROFILER_IDL, profiler)``.
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._vars: Dict[str, ProfileVar] = {}

    def create(self, name: str) -> ProfileVar:
        """Create (or fetch) the profiling variable *name*."""
        var = self._vars.get(name)
        if var is None:
            var = ProfileVar(name, self._clock)
            self._vars[name] = var
        return var

    def var(self, name: str) -> ProfileVar:
        var = self._vars.get(name)
        if var is None:
            raise KeyError(f"no profiling variable {name!r}")
        return var

    def enable(self, name: str) -> None:
        self.var(name).enabled = True

    def disable(self, name: str) -> None:
        self.var(name).enabled = False

    def clear(self, name: str) -> None:
        self.var(name).entries.clear()

    def names(self) -> List[str]:
        return sorted(self._vars)

    # -- profile/1.0 XRL handlers -----------------------------------------
    def xrl_enable(self, pname: str) -> None:
        self.enable(pname)

    def xrl_disable(self, pname: str) -> None:
        self.disable(pname)

    def xrl_clear(self, pname: str) -> None:
        self.clear(pname)

    def xrl_list(self) -> dict:
        return {"pnames": ",".join(self.names())}

    def xrl_get_entries(self, pname: str) -> dict:
        return {"entries": "\n".join(self.var(pname).format_entries())}
