#!/usr/bin/env python3
"""Quickstart: build a router, configure it through the CLI, watch routes.

Two routers on a link.  Router r1 is managed through the Router Manager's
CLI exactly as an operator would drive XORP: edit the candidate
configuration, commit, inspect state.  RIP converges between the routers
and a packet is forwarded end-to-end through the simulated FIBs.

Run:  python examples/quickstart.py
"""

from repro.net import IPv4
from repro.rip import RipProcess
from repro.rtrmgr import Cli, RouterManager
from repro.simnet import SimNetwork


def main() -> None:
    network = SimNetwork()
    r1 = network.add_router("r1")
    r2 = network.add_router("r2")
    network.link(r1, "10.0.0.1", r2, "10.0.0.2", prefix_len=24)
    network.link(r2, "10.0.1.1", network.add_router("r3"), "10.0.1.2",
                 prefix_len=24)
    network.run(duration=1)

    # r2/r3 run plain RIP processes; r1 is driven through the rtrmgr CLI.
    rip2 = RipProcess(r2.host, update_interval=5.0, triggered_delay=0.5)
    rip2.xrl_add_rip_address("eth0", IPv4("10.0.0.2"))
    rip2.xrl_add_rip_address("eth1", IPv4("10.0.1.1"))
    # Redistribute r2's connected subnets into RIP so they are advertised.
    from repro.xrl import Xrl, XrlArgs

    rip2.xrl.send_sync(Xrl("rib", "rib", "1.0", "redist_enable4",
                           XrlArgs().add_txt("target", "rip")
                           .add_txt("from_protocol", "connected")), deadline=10)

    rtrmgr = RouterManager(r1.host)
    cli = Cli(rtrmgr)
    print("== operator session on r1 ==")
    for line in [
        "set protocols rip interface eth0 cost 1",
        "create protocols rip redistribute connected",
        "set protocols static route 192.168.50.0/24 next-hop 10.0.0.2",
        "show candidate",
        "commit",
        "show modules",
    ]:
        print(f"r1> {line}")
        output = cli.execute(line)
        if output:
            print(output)


    print("\n== waiting for RIP convergence ==")
    converged = network.run_until(
        lambda: r1.fea.fib4.lookup(IPv4("10.0.1.2")) is not None, timeout=120)
    print(f"converged: {converged}")

    print("\n== r1 forwarding table ==")
    print(cli.execute("show route"))

    print("\n== r1 RIP status ==")
    print(cli.execute("show rip"))

    print("\n== forwarding a packet r1 -> 10.0.1.2 (r3) ==")
    network.send_packet(r1, IPv4("10.0.0.1"), IPv4("10.0.1.2"), 7, b"hello")
    delivered = network.run_until(lambda: bool(network.delivered), timeout=10)
    if delivered:
        name, dst, port, payload = network.delivered[0]
        print(f"delivered at {name}: dst={dst} payload={payload!r}")
    else:
        print("packet was not delivered!")

    print("\n== scripting an XRL, as call_xrl would ==")
    print(cli.execute('call "finder://rib/rib/1.0/lookup_route_by_dest4'
                      '?addr:ipv4=10.0.1.2"'))


if __name__ == "__main__":
    main()
