#!/usr/bin/env python3
"""A third-party routing protocol, built only against the public APIs.

The paper's extensibility test (§8.3): "One university unrelated to our
group used XORP to implement an ad-hoc wireless routing protocol ...
Their implementation required a single change to our internal APIs to
allow a route to be specified by interface rather than by nexthop router,
as there is no IP subnetting in an ad-hoc network."

This example plays that team: a toy distance-vector "ad-hoc" protocol
implemented as a XorpProcess that uses exactly the interfaces BGP and RIP
use — the FEA raw-packet relay for its hello/advert datagrams and the
RIB's ``add_route4`` to contribute routes.  Nothing in the RIB, FEA, or
Router Manager is modified; the protocol even registers with the Router
Manager as a loadable module.

Run:  python examples/adhoc_protocol.py
"""

import struct

from repro.core.process import XorpProcess
from repro.interfaces import FEA_RAWPKT_CLIENT4_IDL, interface, COMMON_IDL
from repro.net import IPNet, IPv4
from repro.simnet import SimNetwork
from repro.trie import RouteTrie
from repro.xrl import Xrl, XrlArgs

ADHOC_PORT = 8765
HELLO_INTERVAL = 3.0


class AdhocProcess(XorpProcess):
    """A toy ad-hoc protocol: flood host routes for every known node."""

    process_name = "adhoc"

    def __init__(self, host, node_addr: IPv4, ifnames, *,
                 fea_target="fea", rib_target="rib"):
        super().__init__(host)
        self.node_addr = node_addr
        self.ifnames = list(ifnames)
        self.fea_target = fea_target
        self.rib_target = rib_target
        self.xrl = self.create_router("adhoc", singleton=True)
        #: host routes we know: addr -> (metric, via_ifname)
        self.known = {}
        self.xrl.bind(FEA_RAWPKT_CLIENT4_IDL, self)
        self.xrl.bind(COMMON_IDL, self)
        # Everything below uses only public XRL APIs -------------------
        self.xrl.send(Xrl(rib_target, "rib", "1.0", "add_igp_table4",
                          XrlArgs().add_txt("protocol", "adhoc")))
        for ifname in self.ifnames:
            args = (XrlArgs().add_txt("creator", "adhoc")
                    .add_txt("ifname", ifname).add_u32("port", ADHOC_PORT))
            self.xrl.send(Xrl(fea_target, "fea_rawpkt4", "1.0", "open_udp",
                              args))
        self.loop.call_periodic(HELLO_INTERVAL, self._advertise,
                                name="adhoc-hello")

    # -- flooding -------------------------------------------------------
    def _advertise(self) -> None:
        """Broadcast (self + everything we know) on every interface."""
        entries = [(self.node_addr.to_int(), 0)]
        entries.extend((addr, metric) for addr, (metric, __)
                       in self.known.items())
        payload = struct.pack("!H", len(entries)) + b"".join(
            struct.pack("!IH", addr, metric) for addr, metric in entries)
        for ifname in self.ifnames:
            args = (XrlArgs().add_txt("ifname", ifname)
                    .add_ipv4("dst", IPv4("255.255.255.255"))
                    .add_u32("port", ADHOC_PORT)
                    .add_binary("payload", payload))
            self.xrl.send(Xrl(self.fea_target, "fea_rawpkt4", "1.0",
                              "send_udp", args))

    # -- fea_rawpkt_client4/1.0 -----------------------------------------
    def xrl_recv_udp(self, ifname, src, port, payload) -> None:
        (count,) = struct.unpack_from("!H", payload, 0)
        offset = 2
        for __ in range(count):
            addr, metric = struct.unpack_from("!IH", payload, offset)
            offset += 6
            metric += 1
            if addr == self.node_addr.to_int():
                continue
            current = self.known.get(addr)
            if current is None or metric < current[0]:
                self.known[addr] = (metric, ifname)
                # Paper: "a route ... specified by interface rather than
                # by nexthop router" — we pass the neighbour as nexthop
                # and the interface name rides along in our own state.
                args = (XrlArgs().add_txt("protocol", "adhoc")
                        .add_ipv4net("net", IPNet(IPv4(addr), 32))
                        .add_ipv4("nexthop", src)
                        .add_u32("metric", metric)
                        .add_list("policytags", []))
                method = "add_route4" if current is None else "replace_route4"
                self.xrl.send(Xrl(self.rib_target, "rib", "1.0", method, args))

    # -- common/0.1 -------------------------------------------------------
    def xrl_get_target_name(self):
        return {"name": self.xrl.instance_name}

    def xrl_get_version(self):
        return {"version": "adhoc/0.1"}

    def xrl_get_status(self):
        return {"status": "running"}

    def xrl_shutdown(self):
        self.loop.call_soon(self.shutdown)


def main() -> None:
    network = SimNetwork()
    nodes = {}
    # A chain of four "wireless" nodes.
    previous = None
    for index, name in enumerate(("n1", "n2", "n3", "n4")):
        router = network.add_router(name)
        nodes[name] = router
        if previous is not None:
            network.link(previous, f"10.9.{index}.1", router,
                         f"10.9.{index}.2", prefix_len=24)
        previous = router
    network.run(duration=1)

    print("== starting the third-party ad-hoc protocol on every node ==")
    processes = {}
    for name, router in nodes.items():
        ifnames = router.fea.ifmgr.names()
        node_addr = router.fea.ifmgr.get(ifnames[0]).addr
        processes[name] = AdhocProcess(router.host, node_addr, ifnames)
        print(f"  {name}: node address {node_addr}, interfaces {ifnames}")

    print("\n== letting hellos flood ==")
    network.run(duration=20)
    n1, n4 = processes["n1"], processes["n4"]
    print(f"n1 knows {len(n1.known)} other nodes; "
          f"n4 knows {len(n4.known)} other nodes")
    for addr_value, (metric, ifname) in sorted(n1.known.items()):
        print(f"  n1 -> {IPv4(addr_value)} metric {metric} via {ifname}")

    far_addr = n4.node_addr
    entry = nodes["n1"].fea.fib4.lookup(far_addr)
    print(f"\nn1's kernel FIB entry for {far_addr}: {entry}")
    assert entry is not None, "ad-hoc routes must reach the FIB via the RIB"
    print("\nThe protocol used only public XRL APIs: "
          "fea_rawpkt4 for packets, rib/1.0 for routes.")


if __name__ == "__main__":
    main()
