#!/usr/bin/env python3
"""OSPF-lite: link-state routing with event-driven SPF.

The paper notes "support for OSPF and IS-IS is under development" for
XORP 1.0; this reproduction ships an OSPF-lite as its extension exercise.
Four routers in a square; costs steer traffic one way around; when the
preferred path's link dies, SPF immediately (event-driven, no scanner)
reconverges the FIBs the other way around.

    r1 ----1---- r2
     |            |
     5            1
     |            |
    r4 ----1---- r3

Run:  python examples/ospf_area.py
"""

from repro.net import IPNet, IPv4
from repro.ospf import OspfProcess
from repro.simnet import SimNetwork


def main() -> None:
    network = SimNetwork()
    r1 = network.add_router("r1")
    r2 = network.add_router("r2")
    r3 = network.add_router("r3")
    r4 = network.add_router("r4")
    network.link(r1, "10.0.12.1", r2, "10.0.12.2")   # r1 eth0 / r2 eth0
    network.link(r2, "10.0.23.2", r3, "10.0.23.3")   # r2 eth1 / r3 eth0
    network.link(r3, "10.0.34.3", r4, "10.0.34.4")   # r3 eth1 / r4 eth0
    network.link(r4, "10.0.14.4", r1, "10.0.14.1")   # r4 eth1 / r1 eth1
    network.run(duration=0.5)

    costs = {  # (router, ifname) -> cost; the r1-r4 edge is expensive
        ("r1", "eth1"): 5, ("r4", "eth1"): 5,
    }
    processes = {}
    for index, router in enumerate((r1, r2, r3, r4), start=1):
        rid = IPv4(f"{index}.{index}.{index}.{index}")
        ospf = OspfProcess(router.host, rid, hello_interval=1.0,
                           dead_interval=4.0)
        processes[router.name] = ospf
        for ifname in router.fea.ifmgr.names():
            interface = router.fea.ifmgr.get(ifname)
            cost = costs.get((router.name, ifname), 1)
            ospf.xrl_add_ospf_interface(ifname, interface.addr,
                                        interface.prefix_len, cost)

    print("== waiting for the area to converge ==")
    target = IPNet.parse("10.0.34.0/24")  # the r3-r4 subnet, seen from r1
    assert network.run_until(
        lambda: (r1.fea.fib4.exact(target) is not None
                 and r1.fea.fib4.exact(target).nexthop == IPv4("10.0.12.2")),
        timeout=60)
    entry = r1.fea.fib4.exact(target)
    print(f"r1 -> {target}: via {entry.nexthop} "
          f"(the cheap way, around through r2/r3)")
    print(f"r1 LSDB: {processes['r1'].xrl_get_lsdb()['lsdb']}")
    print(f"r1 SPF runs so far: {processes['r1'].spf_runs}")

    print("\n== the r2-r3 link fails ==")
    network.links[1].set_up(False)
    assert network.run_until(
        lambda: (r1.fea.fib4.exact(target) is not None
                 and r1.fea.fib4.exact(target).nexthop == IPv4("10.0.14.4")),
        timeout=60)
    entry = r1.fea.fib4.exact(target)
    print(f"r1 -> {target}: via {entry.nexthop} "
          f"(rerouted over the expensive r1-r4 edge)")
    print(f"reconverged at t={network.loop.now():.1f}s "
          f"(dead interval 4s; no 30-second scanner in sight)")

    print("\n== data plane check: r1 sends a packet to 10.0.34.3 ==")
    network.send_packet(r1, IPv4("10.0.12.1"), IPv4("10.0.34.3"), 7, b"ping")
    assert network.run_until(lambda: bool(network.delivered), timeout=10)
    name, dst, port, payload = network.delivered[0]
    print(f"delivered at {name}: {payload!r}")


if __name__ == "__main__":
    main()
