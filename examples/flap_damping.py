#!/usr/bin/env python3
"""Route flap damping as a pluggable stage (paper §8.3).

    "Route flap damping was also not a part of our original BGP design.
    We are currently adding this functionality ... by adding another
    stage to the BGP pipeline.  The code does not impact other stages,
    which need not be aware that damping is occurring."

A stable peer and a flapping peer announce prefixes into a router whose
peerings have the damping stage enabled.  The flapping prefix accumulates
penalty, gets suppressed, and is only reused once its penalty decays —
while the stable prefix is completely unaffected.

Run:  python examples/flap_damping.py
"""

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.xrl import Xrl, XrlArgs


def main() -> None:
    loop = EventLoop(SimulatedClock())
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host)
    bgp = BgpProcess(host, local_as=65000, bgp_id=IPv4("9.9.9.9"))
    args = (XrlArgs().add_txt("protocol", "static")
            .add_ipv4net("net", "10.0.0.0/24").add_ipv4("nexthop", "0.0.0.0")
            .add_u32("metric", 1).add_list("policytags", []))
    bgp.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args), deadline=10)

    # The flapping neighbour, with damping enabled on its input branch.
    flapper = BgpProcess(Host(loop=loop), local_as=65001,
                         bgp_id=IPv4("1.1.1.1"), rib_target=None)
    config = PeerConfig(IPv4("10.0.0.2"), 65001, 65000, IPv4("10.0.0.1"),
                        enable_damping=True)
    handler = bgp.add_peer(config)
    # Tune the damping stage for a fast demo: half-life 30 s.
    handler.damping.half_life = 30.0
    handler.damping.suppress_threshold = 2500.0
    handler.damping.reuse_threshold = 750.0
    remote = flapper.add_peer(PeerConfig(IPv4("10.0.0.1"), 65000, 65001,
                                         IPv4("10.0.0.2")))
    s1, s2 = session_pair(loop, 0.001)
    handler.attach_session(s1)
    remote.attach_session(s2)
    handler.enable()
    remote.enable()
    loop.run_until(lambda: handler.fsm.state == BgpState.ESTABLISHED,
                   timeout=60)

    stable = IPNet.parse("99.1.0.0/16")
    flappy = IPNet.parse("99.2.0.0/16")
    flapper.xrl_originate_route4(stable, IPv4("10.0.0.2"), True)
    flapper.xrl_originate_route4(flappy, IPv4("10.0.0.2"), True)
    loop.run_until(lambda: bgp.decision.route_count == 2, timeout=60)
    print(f"t={loop.now():6.0f}s  both prefixes installed")

    print("\n== the 99.2.0.0/16 origin starts flapping ==")
    for flap in range(4):
        flapper.xrl_withdraw_route4(flappy)
        loop.run(duration=1.5)
        flapper.xrl_originate_route4(flappy, IPv4("10.0.0.2"), True)
        loop.run(duration=1.5)
        penalty = handler.damping.penalty_of(flappy)
        present = flappy in bgp.decision.winners
        print(f"t={loop.now():6.0f}s  flap {flap + 1}: penalty={penalty:6.0f} "
              f"route present: {present}")

    assert flappy not in bgp.decision.winners, "expected suppression"
    assert stable in bgp.decision.winners, "stable prefix must be unaffected"
    print(f"\nt={loop.now():6.0f}s  99.2.0.0/16 is SUPPRESSED "
          f"(suppress_count={handler.damping.suppress_count}); "
          "99.1.0.0/16 untouched")

    print("\n== waiting for the penalty to decay below reuse threshold ==")
    loop.run_until(lambda: flappy in bgp.decision.winners, timeout=600)
    penalty = handler.damping.penalty_of(flappy)
    print(f"t={loop.now():6.0f}s  99.2.0.0/16 REUSED at penalty={penalty:.0f}")
    print(f"route: {bgp.decision.winners[flappy]}")


if __name__ == "__main__":
    main()
