#!/usr/bin/env python3
"""Scripting the router through textual XRLs (paper §6.1) + profiling (§8.2).

    "the textual form permits XRLs to be called from any scripting
    language via a simple call_xrl program.  This is put to frequent use
    in all our scripts for automated testing."

A small "test script" drives a live router entirely through textual XRLs:
it inspects targets, adds and looks up routes, flips an interface, then
uses the profile/1.0 interface (the paper's ``xorp_profiler``) to watch a
route flow through the RIB's profiling points.

Run:  python examples/xrl_scripting.py
"""

from repro.simnet import SimNetwork
from repro.xrl.call_xrl import call_xrl

SCRIPT = [
    # -- discovery ---------------------------------------------------------
    "finder://rib/common/0.1/get_target_name",
    "finder://rib/common/0.1/get_version",
    "finder://fea/common/0.1/get_status",
    # -- drive the RIB like a routing protocol would -----------------------
    "finder://rib/rib/1.0/add_igp_table4?protocol:txt=script",
    "finder://rib/rib/1.0/add_route4?protocol:txt=script"
    "&net:ipv4net=192.0.2.0/24&nexthop:ipv4=10.0.0.2&metric:u32=5"
    "&policytags:list=",
    "finder://rib/rib/1.0/lookup_route_by_dest4?addr:ipv4=192.0.2.55",
    "finder://rib/rib/1.0/get_protocol_admin_distance?protocol:txt=rip",
    # -- FEA interface management -------------------------------------------
    "finder://fea/fea_ifmgr/1.0/get_interfaces",
    "finder://fea/fea_ifmgr/1.0/get_interface_addr4?ifname:txt=eth0",
    "finder://fea/fea_fib/1.0/lookup_entry4?addr:ipv4=192.0.2.55",
]

PROFILE_SCRIPT = [
    "finder://rib/profile/1.0/enable?pname:txt=route_arrive_rib",
    "finder://rib/profile/1.0/enable?pname:txt=route_sent_fea",
    "finder://rib/rib/1.0/add_route4?protocol:txt=script"
    "&net:ipv4net=198.51.100.0/24&nexthop:ipv4=10.0.0.2&metric:u32=1"
    "&policytags:list=",
    "finder://rib/rib/1.0/delete_route4?protocol:txt=script"
    "&net:ipv4net=198.51.100.0/24",
    "finder://rib/profile/1.0/list",
    "finder://rib/profile/1.0/get_entries?pname:txt=route_arrive_rib",
    "finder://rib/profile/1.0/get_entries?pname:txt=route_sent_fea",
]


def run_script(router, lines) -> None:
    scripting_router = router.rib.xrl  # any component can originate XRLs
    for line in lines:
        error, output = call_xrl(scripting_router, line)
        status = "OK" if error.is_okay else f"FAIL ({error})"
        print(f"$ call_xrl {line}")
        print(f"  -> {status}" + (f": {output}" if output else ""))


def main() -> None:
    network = SimNetwork()
    r1 = network.add_router("r1")
    r2 = network.add_router("r2")
    network.link(r1, "10.0.0.1", r2, "10.0.0.2")
    network.run(duration=1)

    print("== scripted management session ==")
    run_script(r1, SCRIPT)
    network.run(duration=1)

    print("\n== the xorp_profiler equivalent: profile points over XRLs ==")
    run_script(r1, PROFILE_SCRIPT)

    print("\n== access keys in action: a forged request is rejected ==")
    from repro.xrl.transport.base import decode_response, encode_request
    from repro.xrl import XrlArgs

    forged = encode_request(1, "f" * 32 + "/rib/1.0/get_protocol_admin_distance",
                            XrlArgs().add_txt("protocol", "rip"))
    response = r1.rib.xrl.dispatch_frame(forged)
    __, error, __ = decode_response(response)
    print(f"forged 16-byte key -> {error}")


if __name__ == "__main__":
    main()
