#!/usr/bin/env python3
"""A three-AS BGP network: propagation, best-path selection, peer failure.

Topology (each router is a full stack: BGP + RIB + FEA processes)::

    AS65001 (r1) ---- AS65002 (r2) ---- AS65003 (r3)
        \\_________________________________/
                 (backup path)

r1 originates a prefix; r3 receives it over both paths and picks the
shorter AS path.  When the direct r1-r3 peering fails, r3 reconverges on
the transit path through r2 — the deletion of the failed peering's routes
happens in a dynamic background deletion stage (paper §5.1.2).

Run:  python examples/bgp_network.py
"""

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.rib import RibProcess
from repro.xrl import Xrl, XrlArgs


class Router:
    def __init__(self, loop, name, local_as, router_id):
        self.name = name
        self.host = Host(loop=loop)
        self.loop = loop
        self.fea = FeaProcess(self.host)
        self.rib = RibProcess(self.host)
        self.bgp = BgpProcess(self.host, local_as=local_as,
                              bgp_id=IPv4(router_id))
        self.local_as = local_as

    def add_static(self, net_text, nexthop="0.0.0.0"):
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", net_text).add_ipv4("nexthop", nexthop)
                .add_u32("metric", 1).add_list("policytags", []))
        error, __ = self.bgp.xrl.send_sync(
            Xrl("rib", "rib", "1.0", "add_route4", args), deadline=10)
        assert error.is_okay, error

    def show_bgp_route(self, prefix_text):
        net = IPNet.parse(prefix_text)
        route = self.bgp.decision.winners.get(net)
        if route is None:
            return f"{self.name}: {prefix_text}: no route"
        return (f"{self.name}: {prefix_text} via {route.nexthop} "
                f"as-path [{route.attributes.as_path}]")


def connect(a, b, addr_a, addr_b):
    loop = a.loop
    s1, s2 = session_pair(loop, latency=0.002)
    peer_a = a.bgp.add_peer(PeerConfig(IPv4(addr_b), b.local_as, a.local_as,
                                       IPv4(addr_a)))
    peer_a.attach_session(s1)
    peer_b = b.bgp.add_peer(PeerConfig(IPv4(addr_a), a.local_as, b.local_as,
                                       IPv4(addr_b)))
    peer_b.attach_session(s2)
    subnet = str(IPNet(IPv4(addr_a), 24))
    a.add_static(subnet)
    b.add_static(subnet)
    peer_a.enable()
    peer_b.enable()
    return peer_a, peer_b


def main() -> None:
    loop = EventLoop(SimulatedClock())
    r1 = Router(loop, "r1", 65001, "1.1.1.1")
    r2 = Router(loop, "r2", 65002, "2.2.2.2")
    r3 = Router(loop, "r3", 65003, "3.3.3.3")

    print("== establishing peerings ==")
    p12, p21 = connect(r1, r2, "10.0.12.1", "10.0.12.2")
    p23, p32 = connect(r2, r3, "10.0.23.2", "10.0.23.3")
    p13, p31 = connect(r1, r3, "10.0.13.1", "10.0.13.3")
    all_peers = [p12, p21, p23, p32, p13, p31]
    ok = loop.run_until(
        lambda: all(p.fsm.state == BgpState.ESTABLISHED for p in all_peers),
        timeout=120)
    print(f"all sessions established: {ok}")

    print("\n== r1 originates 99.0.0.0/8 ==")
    r1.bgp.xrl_originate_route4(IPNet.parse("99.0.0.0/8"),
                                IPv4("10.0.12.1"), True)
    loop.run_until(
        lambda: IPNet.parse("99.0.0.0/8") in r3.bgp.decision.winners,
        timeout=60)
    loop.run(duration=10)  # let both paths arrive
    print(r2.show_bgp_route("99.0.0.0/8"))
    print(r3.show_bgp_route("99.0.0.0/8"))
    route = r3.bgp.decision.winners[IPNet.parse("99.0.0.0/8")]
    assert route.attributes.as_path.as_list() == [65001], \
        "r3 must prefer the direct (shorter) path"
    print("r3 prefers the direct path, as-path length 1")

    print("\n== direct r1-r3 peering fails ==")
    p13.disable()
    loop.run_until(
        lambda: (IPNet.parse("99.0.0.0/8") in r3.bgp.decision.winners
                 and r3.bgp.decision.winners[IPNet.parse("99.0.0.0/8")]
                 .attributes.as_path.as_list() == [65002, 65001]),
        timeout=120)
    print(r3.show_bgp_route("99.0.0.0/8"))
    print(f"r3 reconverged on the transit path; deletion stages created at "
          f"r3: {p31.deletion_stages_created}")

    print("\n== peering restored ==")
    p13.enable()
    loop.run_until(
        lambda: (IPNet.parse("99.0.0.0/8") in r3.bgp.decision.winners
                 and r3.bgp.decision.winners[IPNet.parse("99.0.0.0/8")]
                 .attributes.as_path.as_list() == [65001]),
        timeout=180)
    print(r3.show_bgp_route("99.0.0.0/8"))
    print("r3 back on the direct path")

    print("\n== forwarding state at r3 ==")
    loop.run(duration=5)  # let the RIB/FEA streams drain
    entry = r3.fea.fib4.lookup(IPv4("99.1.2.3"))
    print(f"FIB: 99.1.2.3 -> {entry}")


if __name__ == "__main__":
    main()
