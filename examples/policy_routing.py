#!/usr/bin/env python3
"""Routing policy: the stack language in action (paper §8.3).

Two scenarios:

1. **BGP import policy** — r2 prefers routes from its "customer" peer by
   raising localpref, tags them with a community, and rejects a
   documentation prefix outright.  Installing the policy while routes are
   already present exercises the background re-filtering path ("when
   routing policy filters are changed by the operator and many routes
   need to be refiltered and reevaluated").
2. **RIB redistribution policy** — static routes are redistributed into
   RIP only if they match a filter, with the metric rewritten.

Run:  python examples/policy_routing.py
"""

from repro.bgp import BgpProcess, BgpState
from repro.bgp.peer import PeerConfig
from repro.bgp.session import session_pair
from repro.core.process import Host
from repro.eventloop import EventLoop, SimulatedClock
from repro.fea import FeaProcess
from repro.net import IPNet, IPv4
from repro.policy import PolicyResult, PolicyVM, RibVarRW, compile_source
from repro.rib import RibProcess
from repro.rib.route import RibRoute
from repro.xrl import Xrl, XrlArgs

IMPORT_POLICY = """
# Prefer customer routes; drop the documentation prefix.
policy-statement customer-in {
    term drop-doc {
        from { network4 orlonger 203.0.113.0/24; }
        then { reject; }
    }
    term customer {
        from { neighbor: 10.0.0.1; }
        then { localpref: 200; community: 65002; accept; }
    }
}
"""


def build_router(loop, name, local_as, router_id):
    host = Host(loop=loop)
    fea = FeaProcess(host)
    rib = RibProcess(host)
    bgp = BgpProcess(host, local_as=local_as, bgp_id=IPv4(router_id))
    return host, fea, rib, bgp


def main() -> None:
    loop = EventLoop(SimulatedClock())
    host1, fea1, rib1, bgp1 = build_router(loop, "r1", 65001, "1.1.1.1")
    host2, fea2, rib2, bgp2 = build_router(loop, "r2", 65002, "2.2.2.2")

    # Peering r1 <-> r2.
    s1, s2 = session_pair(loop, 0.002)
    p12 = bgp1.add_peer(PeerConfig(IPv4("10.0.0.2"), 65002, 65001,
                                   IPv4("10.0.0.1")))
    p21 = bgp2.add_peer(PeerConfig(IPv4("10.0.0.1"), 65001, 65002,
                                   IPv4("10.0.0.2")))
    p12.attach_session(s1)
    p21.attach_session(s2)
    for bgp in (bgp1, bgp2):
        args = (XrlArgs().add_txt("protocol", "static")
                .add_ipv4net("net", "10.0.0.0/24").add_ipv4("nexthop", "0.0.0.0")
                .add_u32("metric", 1).add_list("policytags", []))
        bgp.xrl.send_sync(Xrl("rib", "rib", "1.0", "add_route4", args),
                          timeout=10)
    p12.enable()
    p21.enable()
    loop.run_until(lambda: p21.fsm.state == BgpState.ESTABLISHED, timeout=60)

    print("== r1 announces three prefixes (no policy installed yet) ==")
    for prefix in ("99.1.0.0/16", "99.2.0.0/16", "203.0.113.0/24"):
        bgp1.xrl_originate_route4(IPNet.parse(prefix), IPv4("10.0.0.1"), True)
    loop.run_until(lambda: bgp2.decision.route_count >= 3, timeout=60)
    for net, route in sorted(bgp2.decision.winners.items(),
                             key=lambda kv: str(kv[0])):
        print(f"  r2: {net} localpref={route.attributes.local_pref} "
              f"communities={route.attributes.communities}")

    print("\n== operator installs the import policy on r2 (live) ==")
    args = (XrlArgs().add_u32("filter_id", 1)
            .add_txt("policy_source", IMPORT_POLICY))
    error, __ = bgp2.xrl.send_sync(
        Xrl("bgp", "policy", "0.1", "configure_filter", args), timeout=10)
    print(f"configure_filter: {'OK' if error.is_okay else error}")
    # Background re-filtering removes 203.0.113.0/24 and retags the rest.
    loop.run_until(
        lambda: IPNet.parse("203.0.113.0/24") not in bgp2.decision.winners,
        timeout=60)
    loop.run(duration=5)
    for net, route in sorted(bgp2.decision.winners.items(),
                             key=lambda kv: str(kv[0])):
        print(f"  r2: {net} localpref={route.attributes.local_pref} "
              f"communities={route.attributes.communities}")
    assert IPNet.parse("203.0.113.0/24") not in bgp2.decision.winners

    print("\n== RIB redistribution policy (standalone VM demo) ==")
    redist_policy = compile_source("""
        policy-statement redist-static {
            term lab-routes {
                from { protocol: "static"; network4 orlonger 172.16.0.0/12; }
                then { metric: 5; tag: 42; accept; }
            }
            term everything-else { then { reject; } }
        }
    """)
    vm = PolicyVM()
    for net_text in ("172.16.1.0/24", "192.168.1.0/24"):
        route = RibRoute(IPNet.parse(net_text), IPv4("10.0.0.2"), 1, "static")
        varrw = RibVarRW(route)
        verdict = vm.run(redist_policy, varrw)
        if verdict == PolicyResult.ACCEPT:
            rewritten = varrw.result()
            print(f"  {net_text}: ACCEPT metric={rewritten.metric} "
                  f"tags={rewritten.policytags}")
        else:
            print(f"  {net_text}: {verdict.value.upper()}")


if __name__ == "__main__":
    main()
