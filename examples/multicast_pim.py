#!/usr/bin/env python3
"""Multicast: IGMP membership driving PIM-SM-lite (paper Figure 1).

A receiver joins a group via IGMP; PIM resolves the reverse path to the
rendezvous point through the RIB's interest registration and installs a
multicast forwarding entry directly in the FEA.  When unicast routing
towards the RP changes, the RIB invalidates PIM's registration and the
tree's incoming interface moves — the exact coupling Figure 1 draws.

Run:  python examples/multicast_pim.py
"""

from repro.mld6igmp import Mld6igmpProcess
from repro.net import IPv4
from repro.pim import PimProcess
from repro.simnet import SimNetwork
from repro.xrl import Xrl, XrlArgs


def show_mfib(router) -> None:
    if not router.fea.mfib:
        print("  (empty)")
    for (source, group), entry in sorted(router.fea.mfib.items()):
        print(f"  ({IPv4(source)}, {IPv4(group)}) iif={entry.iif} "
              f"oifs={','.join(entry.oifs)}")


def main() -> None:
    network = SimNetwork()
    router = network.add_router("router")
    rp_near = network.add_router("rp-near")     # eth0 side
    rp_far = network.add_router("rp-far")       # eth1 side
    receivers = network.add_router("receivers")  # eth2 side
    network.link(router, "10.1.0.1", rp_near, "10.1.0.2")
    network.link(router, "10.2.0.1", rp_far, "10.2.0.2")
    network.link(router, "10.3.0.1", receivers, "10.3.0.2")
    igmp = Mld6igmpProcess(router.host)
    pim = PimProcess(router.host)
    network.run(duration=1)

    def rib_call(method, **values):
        from repro.interfaces import RIB_IDL

        args = RIB_IDL.method(method).build_args(values)
        error, __ = pim.xrl.send_sync(Xrl("rib", "rib", "1.0", method, args),
                                      deadline=10)
        assert error.is_okay, error

    print("== configure the RP (77.0.0.1, reachable via eth0) ==")
    rib_call("add_route4", protocol="static", net="77.0.0.0/8",
             nexthop="10.1.0.2", metric=1, policytags=[])
    args = (XrlArgs().add_ipv4net("group_prefix", "239.0.0.0/8")
            .add_ipv4("rp", "77.0.0.1"))
    pim.xrl.send_sync(Xrl("pim", "pim", "0.1", "set_rp", args), deadline=10)
    network.run(duration=1)

    print("\n== a receiver on eth2 joins 239.1.1.1 (IGMP report) ==")
    igmp.xrl_add_membership4("eth2", IPv4("239.1.1.1"))
    network.run_until(lambda: bool(router.fea.mfib), timeout=20)
    print("multicast FIB:")
    show_mfib(router)
    entry = next(iter(router.fea.mfib.values()))
    assert entry.iif == "eth0"

    print("\n== unicast routing to the RP moves to eth1 ==")
    rib_call("add_route4", protocol="static", net="77.0.0.0/16",
             nexthop="10.2.0.2", metric=1, policytags=[])
    network.run_until(
        lambda: next(iter(router.fea.mfib.values())).iif == "eth1",
        timeout=20)
    print("multicast FIB after the routing change:")
    show_mfib(router)

    print("\n== a second receiver joins on eth0; the first one leaves ==")
    igmp.xrl_add_membership4("eth0", IPv4("239.1.1.1"))
    network.run(duration=1)
    igmp.xrl_delete_membership4("eth2", IPv4("239.1.1.1"))
    network.run(duration=1)
    show_mfib(router)

    print("\n== the last receiver leaves: the tree is torn down ==")
    igmp.xrl_delete_membership4("eth0", IPv4("239.1.1.1"))
    network.run_until(lambda: not router.fea.mfib, timeout=20)
    show_mfib(router)
    print("done")


if __name__ == "__main__":
    main()
